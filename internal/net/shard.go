package net

import (
	"context"
	"runtime"

	"dima/internal/graph"
	"dima/internal/msg"
)

// Worker commands, sent on a shard's cmd channel. Values >= 0 mean
// "step this round"; the negative values select the other phases.
const (
	cmdMerge = -1
	cmdStop  = -2
)

// shardDelivery is one delivery record buffered between the step and
// merge phases. On the reliable fast path one record covers a whole
// (message, destination shard) pair: lo/hi bound the destination
// shard's slice of the sender's shard-grouped neighbor array
// (shardSegments.flat), and the merge phase expands the record into
// those neighbors' inboxes. With a fault injector configured,
// deliveries are filtered per receiver at fan-out instead, so each
// record carries exactly one receiver vertex in lo (hi is unused).
type shardDelivery struct {
	lo, hi int32
	m      msg.Message
}

// shardStatus is one worker's end-of-step report: the shared nodeStatus
// fields the coordinator folds into Result/RoundTraffic, plus the
// count of delivery records the worker buffered this round.
type shardStatus struct {
	nodeStatus
	records int64
}

// shardInbox is one shard's inbox arena: the messages of every vertex
// the shard owns, laid out back to back in one flat buffer. Vertex
// lo+i's inbox is buf[off[i]:off[i+1]]. The buffer and offset table are
// reused across rounds (double-buffered per shard), so steady-state
// rounds allocate nothing — the struct-of-arrays replacement for the
// per-vertex ragged [][]msg.Message layout.
type shardInbox struct {
	buf []msg.Message
	off []int32
}

// nbrSeg is one segment of a vertex's shard-grouped neighbor list: the
// neighbors owned by shard dst occupy flat[lo:hi].
type nbrSeg struct {
	dst    int32
	lo, hi int32
}

// shardSegments is the per-run CSR of shard-grouped neighbor lists:
// vertex u's segments are segs[segOf[u]:segOf[u+1]], each naming a
// destination shard and a slice of flat holding u's neighbors in that
// shard. Built once per run (reliable path only), it is what lets the
// step phase buffer one record per (message, destination shard) and
// the merge phase expand records to receivers without the sender ever
// touching per-neighbor state.
type shardSegments struct {
	flat  []int32
	segs  []nbrSeg
	segOf []int32
}

// buildShardSegments groups every vertex's neighbor list by owning
// shard. Within one segment the adjacency order is preserved; segments
// are emitted in ascending shard order. O(n·workers + m) time, one
// pass of scratch counters.
func buildShardSegments(g *graph.Graph, owner []int32, workers int) shardSegments {
	n := g.N()
	total := 0
	for u := 0; u < n; u++ {
		total += g.Degree(u)
	}
	ss := shardSegments{
		flat:  make([]int32, total),
		segOf: make([]int32, n+1),
	}
	cnt := make([]int32, workers)
	cur := make([]int32, workers)
	pos := int32(0)
	for u := 0; u < n; u++ {
		ss.segOf[u] = int32(len(ss.segs))
		adj := g.Neighbors(u)
		if len(adj) == 0 {
			continue
		}
		for _, v := range adj {
			cnt[owner[v]]++
		}
		for d := 0; d < workers; d++ {
			c := cnt[d]
			if c == 0 {
				continue
			}
			ss.segs = append(ss.segs, nbrSeg{dst: int32(d), lo: pos, hi: pos + c})
			cur[d] = pos
			pos += c
			cnt[d] = 0
		}
		for _, v := range adj {
			d := owner[v]
			ss.flat[cur[d]] = int32(v)
			cur[d]++
		}
	}
	ss.segOf[n] = int32(len(ss.segs))
	return ss
}

// RunShardCtx is RunShard with an explicit context: the coordinator
// stops the run at the next round barrier after ctx is canceled,
// releases every worker goroutine, and returns the partial Result with
// Aborted set.
func RunShardCtx(ctx context.Context, g *graph.Graph, nodes []Node, cfg Config) (Result, error) {
	cfg.Ctx = ctx
	return RunShard(g, nodes, cfg)
}

// RunShard executes the protocol with cfg.Workers goroutines, each
// owning a contiguous shard of the vertex range. It is the scale
// engine: where RunChan spends a goroutine and a channel per vertex,
// RunShard's costs grow with Workers, so million-vertex graphs run
// without collapsing under scheduler pressure, and on multi-core
// machines the per-round work parallelizes across the shards.
//
// Each round has two barrier-separated phases:
//
//  1. Step: every worker steps its own vertices in id order, sorting
//     each inbox with msg.Sort first, and buffers each outbound
//     broadcast as one shardDelivery per destination shard that holds
//     a neighbor of the sender (per surviving delivery when a fault
//     injector is configured). Workers touch only their own vertices'
//     inboxes and their own outbound buckets, so the phase is
//     data-race free by partitioning.
//  2. Merge: every worker rebuilds the next-round inbox arena of its
//     own shard by draining the non-empty buckets addressed to it in
//     sender shard order (the coordinator hands each worker the exact
//     source list, so empty (src,dst) buckets are never visited),
//     expanding each record to the sender's neighbors inside this
//     shard. Within one sender shard the records are already in sender
//     id order (workers step in id order), so each inbox fills in
//     ascending sender id — exactly the append order RunSync produces.
//     Identical pre-sort inboxes plus the shared msg.Sort make the
//     executions byte-identical: same final colorings, same Result,
//     same per-round RoundTraffic stream, for any Workers.
//
// The coordinator folds worker statistics in shard order between the
// phases and invokes cfg.Observe sequentially in round order, matching
// the other engines' observer contract.
//
// cfg.Fault, when non-nil, is called concurrently from all workers and
// must be safe for concurrent use; the injectors in this package are
// stateless hashes and qualify. Stateful injectors that are sensitive
// to call order (e.g. consuming a shared RNG) only reproduce RunSync
// under Workers == 1.
func RunShard(g *graph.Graph, nodes []Node, cfg Config) (Result, error) {
	if err := validate(g, nodes); err != nil {
		return Result{}, err
	}
	ctx := cfg.ctx()
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	if allDone(nodes) {
		return Result{Terminated: true}, nil
	}
	if canceled(ctx) {
		return Result{Aborted: true}, nil
	}
	n := g.N()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if cfg.ShardStats != nil {
		*cfg.ShardStats = ShardStats{Workers: workers}
	}

	// Contiguous shards: shard s owns [bounds[s], bounds[s+1]). The
	// owner array answers "which shard holds vertex v" in O(1).
	bounds := make([]int, workers+1)
	for s := 0; s <= workers; s++ {
		bounds[s] = s * n / workers
	}
	owner := make([]int32, n)
	for s := 0; s < workers; s++ {
		for u := bounds[s]; u < bounds[s+1]; u++ {
			owner[u] = int32(s)
		}
	}

	// The reliable fast path expands records to neighbors at merge
	// time; a fault injector forces per-delivery filtering at fan-out,
	// where the per-receiver Drop verdicts are decided.
	expand := cfg.Fault == nil
	var segs shardSegments
	if expand {
		segs = buildShardSegments(g, owner, workers)
	}

	// out[s][d] buffers shard s's records addressed to shard d. Buckets
	// are truncated lazily: each worker remembers which of its buckets
	// it filled (touched[s]) and clears exactly those at its next step.
	out := make([][][]shardDelivery, workers)
	for s := range out {
		out[s] = make([][]shardDelivery, workers)
	}
	touched := make([][]int32, workers)

	// srcLists[d] is the ascending list of source shards with a
	// non-empty bucket for destination d this round. The coordinator
	// rebuilds it between the step and merge barriers from the touched
	// lists, so merge workers skip empty buckets entirely instead of
	// scanning all workers² of them.
	srcLists := make([][]int32, workers)
	var usedDsts []int32

	observing := cfg.Observe != nil
	stats := make([]shardStatus, workers)
	cmd := make([]chan int, workers)
	rep := make([]chan struct{}, workers)
	for s := 0; s < workers; s++ {
		cmd[s] = make(chan int, 1)
		rep[s] = make(chan struct{}, 1)
	}

	for s := 0; s < workers; s++ {
		go func(s int) {
			lo, hi := bounds[s], bounds[s+1]
			size := hi - lo
			// Double-buffered inbox arenas plus the counting scratch,
			// all worker-local: the only cross-worker traffic is the
			// out buckets, synchronized by the phase barriers.
			cur := shardInbox{off: make([]int32, size+1)}
			nxt := shardInbox{off: make([]int32, size+1)}
			cnt := make([]int32, size)
			myOut := out[s]
			var tl []int32
			for {
				c := <-cmd[s]
				switch {
				case c >= 0: // step phase for round c
					var st shardStatus
					st.done = true
					for _, d := range tl {
						myOut[d] = myOut[d][:0]
					}
					tl = tl[:0]
					for u := lo; u < hi; u++ {
						inbox := cur.buf[cur.off[u-lo]:cur.off[u-lo+1]]
						msg.Sort(inbox)
						msgs := nodes[u].Step(c, inbox)
						if len(msgs) == 0 {
							continue
						}
						st.messages += int64(len(msgs))
						if expand {
							deg := int64(g.Degree(u))
							usegs := segs.segs[segs.segOf[u]:segs.segOf[u+1]]
							for _, m := range msgs {
								sz := int64(m.Size())
								st.bytes += sz
								st.deliveries += deg
								st.records += int64(len(usegs))
								for _, sg := range usegs {
									if len(myOut[sg.dst]) == 0 {
										tl = append(tl, sg.dst)
									}
									myOut[sg.dst] = append(myOut[sg.dst], shardDelivery{lo: sg.lo, hi: sg.hi, m: m})
								}
								if observing {
									k := &st.kinds[m.Kind]
									k.Messages++
									k.Bytes += sz
									k.Deliveries += deg
								}
							}
						} else {
							for _, m := range msgs {
								sz := int64(m.Size())
								st.bytes += sz
								var delivered int64
								for _, v := range g.Neighbors(u) {
									if cfg.Fault.Drop(c, m, v) {
										continue
									}
									d := owner[v]
									if len(myOut[d]) == 0 {
										tl = append(tl, d)
									}
									myOut[d] = append(myOut[d], shardDelivery{lo: int32(v), m: m})
									delivered++
								}
								st.deliveries += delivered
								st.records += delivered
								if observing {
									k := &st.kinds[m.Kind]
									k.Messages++
									k.Bytes += sz
									k.Deliveries += delivered
								}
							}
						}
					}
					// Done is evaluated here, after the shard's steps and
					// before any next-round delivery — the same evaluation
					// point as RunSync.
					for u := lo; u < hi && st.done; u++ {
						st.done = nodes[u].Done()
					}
					stats[s] = st
					touched[s] = tl
					rep[s] <- struct{}{}
				case c == cmdMerge:
					// Two passes over this shard's incoming records: count
					// per-vertex arrivals, prefix-sum into the offset
					// table, then place messages — a dense arena fill with
					// no per-vertex slice bookkeeping.
					for i := range cnt {
						cnt[i] = 0
					}
					total := int32(0)
					for _, src := range srcLists[s] {
						for _, rec := range out[src][s] {
							if expand {
								for _, v := range segs.flat[rec.lo:rec.hi] {
									cnt[v-int32(lo)]++
								}
								total += rec.hi - rec.lo
							} else {
								cnt[rec.lo-int32(lo)]++
								total++
							}
						}
					}
					nxt.off[0] = 0
					for i := 0; i < size; i++ {
						nxt.off[i+1] = nxt.off[i] + cnt[i]
					}
					if cap(nxt.buf) < int(total) {
						nxt.buf = make([]msg.Message, total)
					} else {
						nxt.buf = nxt.buf[:total]
					}
					copy(cnt, nxt.off[:size])
					buf := nxt.buf
					for _, src := range srcLists[s] {
						for _, rec := range out[src][s] {
							if expand {
								for _, v := range segs.flat[rec.lo:rec.hi] {
									i := v - int32(lo)
									buf[cnt[i]] = rec.m
									cnt[i]++
								}
							} else {
								i := rec.lo - int32(lo)
								buf[cnt[i]] = rec.m
								cnt[i]++
							}
						}
					}
					cur, nxt = nxt, cur
					rep[s] <- struct{}{}
				default: // cmdStop
					return
				}
			}
		}(s)
	}

	broadcast := func(c int) {
		for s := 0; s < workers; s++ {
			cmd[s] <- c
		}
		if c == cmdStop {
			return
		}
		for s := 0; s < workers; s++ {
			<-rep[s]
		}
	}

	var res Result
	var records, mergeScans, mergeSkips int64
	for round := 0; round < maxRounds; round++ {
		broadcast(round)
		done := true
		var rt RoundTraffic
		for s := 0; s < workers; s++ {
			st := &stats[s]
			if !st.done {
				done = false
			}
			res.Messages += st.messages
			res.Deliveries += st.deliveries
			res.Bytes += st.bytes
			records += st.records
			if observing {
				for k := range rt.Kinds {
					rt.Kinds[k].Messages += st.kinds[k].Messages
					rt.Kinds[k].Deliveries += st.kinds[k].Deliveries
					rt.Kinds[k].Bytes += st.kinds[k].Bytes
				}
				rt.Messages += st.messages
				rt.Deliveries += st.deliveries
				rt.Bytes += st.bytes
			}
		}
		if observing {
			rt.Round = round
			cfg.Observe(rt)
		}
		res.Rounds = round + 1
		if done {
			res.Terminated = true
			break
		}
		// Cancellation point: same barrier position as the other engines
		// (after the done verdict, before the merge commits the next
		// round). The cmdStop broadcast below releases the workers, which
		// are parked on cmd here.
		if canceled(ctx) {
			res.Aborted = true
			break
		}
		if round == maxRounds-1 {
			break
		}
		// Rebuild the per-destination source lists from the touched
		// buckets. Iterating sources in ascending order keeps each list
		// sorted, which is what fixes the merge fill order.
		for _, d := range usedDsts {
			srcLists[d] = srcLists[d][:0]
		}
		usedDsts = usedDsts[:0]
		pairs := int64(0)
		for s := 0; s < workers; s++ {
			for _, d := range touched[s] {
				if len(srcLists[d]) == 0 {
					usedDsts = append(usedDsts, d)
				}
				srcLists[d] = append(srcLists[d], int32(s))
				pairs++
			}
		}
		mergeScans += pairs
		mergeSkips += int64(workers)*int64(workers) - pairs
		broadcast(cmdMerge)
	}
	broadcast(cmdStop)
	if cfg.ShardStats != nil {
		cfg.ShardStats.Records = records
		cfg.ShardStats.MergeScans = mergeScans
		cfg.ShardStats.MergeSkips = mergeSkips
	}
	return res, nil
}
