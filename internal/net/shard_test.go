package net

import (
	"reflect"
	"testing"

	"dima/internal/gen"
	"dima/internal/msg"
	"dima/internal/rng"
)

// replayNode is a deterministic node for engine-equivalence tests: each
// round it broadcasts a message derived from its private RNG and the
// sorted inbox it saw, and records the full inbox history. Any
// divergence in delivery order or content between engines changes both
// the recorded history and the downstream traffic.
type replayNode struct {
	id     int
	r      *rng.Rand
	rounds int
	limit  int
	heard  []msg.Message
}

func (n *replayNode) ID() int { return n.id }

func (n *replayNode) Step(round int, inbox []msg.Message) []msg.Message {
	n.heard = append(n.heard, inbox...)
	n.rounds++
	if round >= n.limit {
		return nil
	}
	// Fold the inbox into the outbound message so the next round's
	// traffic depends on exactly what this node received.
	acc := n.r.Uint64()
	for _, m := range inbox {
		acc = rng.Mix64(acc ^ uint64(int64(m.From))<<16 ^ uint64(int64(m.Edge)))
	}
	return []msg.Message{{
		Kind:  msg.KindInvite,
		From:  n.id,
		To:    msg.Broadcast,
		Edge:  int(acc % 64),
		Color: int(acc>>8) % 8,
	}}
}

func (n *replayNode) Done() bool { return n.rounds > n.limit }

func replayNodes(n, limit int, seed uint64) []Node {
	nodes := make([]Node, n)
	src := rng.New(seed)
	for i := range nodes {
		nodes[i] = &replayNode{id: i, r: src.Derive(uint64(i)), limit: limit}
	}
	return nodes
}

type runCapture struct {
	res    Result
	rounds []RoundTraffic
	heard  [][]msg.Message
}

func captureRun(t *testing.T, run Engine, n, limit int, seed uint64, fault FaultInjector) runCapture {
	t.Helper()
	g, err := gen.ErdosRenyiAvgDegree(rng.New(77), n, 6)
	if err != nil {
		t.Fatal(err)
	}
	nodes := replayNodes(n, limit, seed)
	var rc runCapture
	res, err := run(g, nodes, Config{
		MaxRounds: limit + 5,
		Fault:     fault,
		Observe:   func(rt RoundTraffic) { rc.rounds = append(rc.rounds, rt) },
	})
	if err != nil {
		t.Fatal(err)
	}
	rc.res = res
	rc.heard = make([][]msg.Message, n)
	for i, nd := range nodes {
		rc.heard[i] = nd.(*replayNode).heard
	}
	return rc
}

// RunShard must be observationally identical to RunSync — Result,
// per-round RoundTraffic stream, and every node's full sorted-inbox
// history — for any worker count, with and without faults.
func TestShardMatchesSync(t *testing.T) {
	const n, limit = 47, 12
	faults := map[string]FaultInjector{
		"reliable": nil,
		"droprate": DropRate{Seed: 9, P: 0.2},
	}
	for fname, fault := range faults {
		want := captureRun(t, RunSync, n, limit, 5, fault)
		for _, workers := range []int{0, 1, 2, 3, 7, n, n + 10} {
			got := captureRun(t, shardWith(workers), n, limit, 5, fault)
			label := fname
			if got.res != want.res {
				t.Fatalf("%s workers=%d: Result differs:\nshard: %+v\nsync:  %+v", label, workers, got.res, want.res)
			}
			if !reflect.DeepEqual(got.rounds, want.rounds) {
				t.Fatalf("%s workers=%d: RoundTraffic streams differ", label, workers)
			}
			if !reflect.DeepEqual(got.heard, want.heard) {
				t.Fatalf("%s workers=%d: inbox histories differ", label, workers)
			}
		}
	}
}

// The chan engine must agree with the same reference runs.
func TestChanMatchesSync(t *testing.T) {
	const n, limit = 47, 12
	for fname, fault := range map[string]FaultInjector{
		"reliable": nil,
		"droprate": DropRate{Seed: 9, P: 0.2},
	} {
		want := captureRun(t, RunSync, n, limit, 5, fault)
		got := captureRun(t, RunChan, n, limit, 5, fault)
		if got.res != want.res {
			t.Fatalf("%s: Result differs:\nchan: %+v\nsync: %+v", fname, got.res, want.res)
		}
		if !reflect.DeepEqual(got.rounds, want.rounds) {
			t.Fatalf("%s: RoundTraffic streams differ", fname)
		}
		if !reflect.DeepEqual(got.heard, want.heard) {
			t.Fatalf("%s: inbox histories differ", fname)
		}
	}
}

// Shard runs must be reproducible run-to-run for a fixed worker count:
// the merge barrier imposes a deterministic delivery order even though
// worker goroutines race to the barrier.
func TestShardDeterministicAcrossRuns(t *testing.T) {
	a := captureRun(t, shardWith(3), 33, 9, 11, DropRate{Seed: 4, P: 0.1})
	b := captureRun(t, shardWith(3), 33, 9, 11, DropRate{Seed: 4, P: 0.1})
	if a.res != b.res || !reflect.DeepEqual(a.rounds, b.rounds) || !reflect.DeepEqual(a.heard, b.heard) {
		t.Fatal("same-seed shard runs diverged")
	}
}
