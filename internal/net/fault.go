package net

import (
	"dima/internal/msg"
	"dima/internal/rng"
)

// Ready-made fault injectors for probing behavior outside the paper's
// reliable-delivery model. All are deterministic functions of their
// configuration, so faulty runs are as reproducible as clean ones.

// DropRate drops each delivery independently with probability P,
// deterministically derived from Seed, the round, the message, and the
// receiver.
type DropRate struct {
	Seed uint64
	P    float64
}

// Drop implements FaultInjector. Every field enters the hash through
// its own Mix64 step: packing round/From/To into one word would make
// node ids >= 2^20 (or very high rounds) alias and correlate drop
// decisions across unrelated deliveries. Seq participates so that a
// retransmission's fate is independent of the original transmission's.
func (d DropRate) Drop(round int, m msg.Message, to int) bool {
	if d.P <= 0 {
		return false
	}
	if d.P >= 1 {
		return true
	}
	h := rng.Mix64(d.Seed ^ rng.Mix64(uint64(round)))
	h = rng.Mix64(h ^ uint64(int64(m.From)))
	h = rng.Mix64(h ^ uint64(int64(to)))
	h = rng.Mix64(h ^ uint64(m.Kind)<<56 ^ uint64(m.Seq)<<32 ^ uint64(uint32(int32(m.Edge))))
	frac := float64(h>>11) / (1 << 53)
	return frac < d.P
}

// DropLink kills every delivery on one directed link.
type DropLink struct {
	From, To int
}

// Drop implements FaultInjector.
func (d DropLink) Drop(round int, m msg.Message, to int) bool {
	return m.From == d.From && to == d.To
}

// Blackout drops every delivery during the round interval
// [FromRound, ToRound) — a transient network outage.
type Blackout struct {
	FromRound, ToRound int
}

// Drop implements FaultInjector.
func (b Blackout) Drop(round int, m msg.Message, to int) bool {
	return round >= b.FromRound && round < b.ToRound
}

// Partition drops every delivery crossing between the two sides of a
// vertex cut: side[v] == true vertices can only talk to each other.
type Partition struct {
	Side []bool
}

// Drop implements FaultInjector.
func (p Partition) Drop(round int, m msg.Message, to int) bool {
	if m.From >= len(p.Side) || to >= len(p.Side) || m.From < 0 || to < 0 {
		return false
	}
	return p.Side[m.From] != p.Side[to]
}

// Faults chains injectors: a delivery is dropped if any member drops it.
type Faults []FaultInjector

// Drop implements FaultInjector.
func (fs Faults) Drop(round int, m msg.Message, to int) bool {
	for _, f := range fs {
		if f.Drop(round, m, to) {
			return true
		}
	}
	return false
}
