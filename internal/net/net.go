// Package net provides the synchronous message-passing substrate the
// paper's model assumes (§I-C): communication proceeds in lockstep
// rounds, each vertex is a compute node, and every message a node sends
// in a round is heard by all of its neighbors (local broadcast).
//
// Three interchangeable engines execute the same Node protocol logic:
//
//   - RunSync: a deterministic sequential scheduler, used by tests,
//     benchmarks, and experiments for speed and reproducibility.
//   - RunChan: a goroutine per node with channels as links, synchronized
//     by the batch-per-round discipline — the natural Go embodiment of
//     the message-passing model.
//   - RunShard: Config.Workers goroutines, each owning a contiguous
//     vertex shard, with a deterministic two-phase merge barrier — the
//     scale engine for million-vertex graphs.
//
// Given nodes whose behavior is a deterministic function of (round,
// sorted inbox, per-node RNG), all engines produce identical executions;
// this equivalence is property-tested in the core package.
package net

import (
	"context"
	"fmt"

	"dima/internal/graph"
	"dima/internal/msg"
)

// Node is a synchronous protocol participant. Implementations must be
// deterministic functions of their own state, the round number, and the
// (canonically sorted) inbox; all randomness must come from a private
// generator seeded at construction.
type Node interface {
	// ID returns the vertex this node runs on.
	ID() int
	// Step executes one communication round. The inbox holds every
	// message broadcast by a neighbor in the previous round, sorted by
	// msg.Less. The returned messages are locally broadcast: delivered
	// to every neighbor at the next round.
	//
	// The inbox slice is owned by the engine and reused across rounds:
	// implementations may copy Message values out of it but must not
	// retain the slice itself.
	Step(round int, inbox []msg.Message) []msg.Message
	// Done reports whether this node has completed all of its work and
	// flushed every message its neighbors still need.
	Done() bool
}

// FaultInjector decides per (message, receiver) whether a delivery is
// lost. The paper's model assumes reliable delivery; injectors exist so
// tests can probe behavior outside the model.
type FaultInjector interface {
	// Drop reports whether the delivery of m to vertex to in the given
	// round should be discarded.
	Drop(round int, m msg.Message, to int) bool
}

// Config controls an engine run.
type Config struct {
	// MaxRounds bounds the number of communication rounds; 0 means the
	// default of 1,000,000. If the bound is hit the run reports
	// Terminated == false rather than failing.
	MaxRounds int
	// Ctx, when non-nil, allows abandoning the run: every engine checks
	// it once per communication round, at the round barrier, and returns
	// the partial Result accumulated so far with Aborted set. Nil means
	// context.Background() (never canceled). The RunSyncCtx/RunChanCtx/
	// RunShardCtx wrappers populate it; rounds executed before the
	// cancellation are byte-identical to an uncanceled run.
	Ctx context.Context
	// Fault optionally drops deliveries. Nil means reliable delivery.
	Fault FaultInjector
	// Observe, when non-nil, receives one RoundTraffic per communication
	// round (see RoundObserver). Nil skips all per-round accounting.
	Observe RoundObserver
	// Workers is the number of shard goroutines RunShard uses; 0 means
	// runtime.GOMAXPROCS(0). RunSync and RunChan ignore it.
	Workers int
	// ShardStats, when non-nil, is filled by RunShard with internal
	// hot-path counters (buffered delivery records, merge-phase bucket
	// activity). Purely observational — the counters never influence the
	// execution — and ignored by the other engines.
	ShardStats *ShardStats
}

// ShardStats reports internal counters of one RunShard execution. The
// interesting ratio is Records / Result.Messages: on the reliable fast
// path the engine buffers one record per (message, destination shard)
// rather than one per delivery, so the ratio is bounded by the worker
// count instead of the average degree (Result.Deliveries / Messages).
type ShardStats struct {
	// Workers is the resolved worker count (after clamping to [1, N]).
	Workers int
	// Records is the number of shardDelivery records buffered between
	// the step and merge phases. Reliable runs buffer one record per
	// (message, destination shard); faulty runs one per surviving
	// delivery, so Records <= Result.Deliveries always.
	Records int64
	// MergeScans counts (source, destination) buckets actually drained
	// by merge phases; MergeSkips counts the empty buckets the non-empty
	// pair tracking let the merge phases skip. Their sum is
	// workers² × merge rounds, the cost of the old full scan.
	MergeScans, MergeSkips int64
}

// KindTraffic aggregates one message kind's traffic within a round.
type KindTraffic struct {
	// Messages counts local broadcasts sent, Deliveries counts
	// per-neighbor deliveries after fault filtering, Bytes is the total
	// encoded size of the broadcasts.
	Messages, Deliveries, Bytes int64
}

// RoundTraffic is one communication round's traffic snapshot. Traffic
// is attributed to the round in which the message was *sent* — both
// engines agree on this, so for deterministic nodes the per-round
// streams are identical between RunSync and RunChan.
type RoundTraffic struct {
	// Round is the 0-based communication round.
	Round int
	// Messages, Deliveries, and Bytes mirror the Result totals for this
	// round alone.
	Messages, Deliveries, Bytes int64
	// Kinds splits the totals by message kind, indexed by msg.Kind
	// (entry 0 is unused).
	Kinds [msg.KindCount]KindTraffic
}

// RoundObserver receives per-round traffic. Both engines invoke it from
// their coordinating goroutine, sequentially and in round order, after
// every node has executed the round.
type RoundObserver func(RoundTraffic)

const defaultMaxRounds = 1_000_000

// Result summarizes an engine run.
type Result struct {
	// Rounds is the number of communication rounds executed.
	Rounds int
	// Messages is the number of local broadcasts sent.
	Messages int64
	// Deliveries is the number of per-neighbor message deliveries
	// (a broadcast by a degree-d node counts d).
	Deliveries int64
	// Bytes is the total encoded size of all broadcasts.
	Bytes int64
	// Terminated reports whether every node finished within MaxRounds.
	Terminated bool
	// Aborted reports that the run's context was canceled before the
	// nodes finished: the run stopped at a round barrier and the other
	// fields describe the rounds that completed. Terminated and Aborted
	// are mutually exclusive; a run that finishes in the same round its
	// context is canceled reports Terminated.
	Aborted bool
}

// Engine runs a protocol over a topology; RunSync, RunChan, and
// RunShard satisfy it. Cancellation rides in Config.Ctx so that code
// holding an Engine value needs no second signature.
type Engine func(g *graph.Graph, nodes []Node, cfg Config) (Result, error)

// ctx returns the run's context, defaulting to Background.
func (c Config) ctx() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// canceled reports whether the run should abort. All engines call it at
// the same evaluation points — once before the first round and once per
// completed round, after the all-done check — so canceled runs produce
// identical partial Results on every engine.
func canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

func validate(g *graph.Graph, nodes []Node) error {
	if len(nodes) != g.N() {
		return fmt.Errorf("net: %d nodes for %d vertices", len(nodes), g.N())
	}
	for i, n := range nodes {
		if n == nil {
			return fmt.Errorf("net: nil node at %d", i)
		}
		if n.ID() != i {
			return fmt.Errorf("net: node at index %d reports id %d", i, n.ID())
		}
	}
	return nil
}

func allDone(nodes []Node) bool {
	for _, n := range nodes {
		if !n.Done() {
			return false
		}
	}
	return true
}

// RunSyncCtx is RunSync with an explicit context: the run stops at the
// next round barrier after ctx is canceled and returns the partial
// Result with Aborted set.
func RunSyncCtx(ctx context.Context, g *graph.Graph, nodes []Node, cfg Config) (Result, error) {
	cfg.Ctx = ctx
	return RunSync(g, nodes, cfg)
}

// RunSync executes the protocol with a deterministic sequential
// scheduler: one goroutine, vertices stepped in id order each round.
func RunSync(g *graph.Graph, nodes []Node, cfg Config) (Result, error) {
	if err := validate(g, nodes); err != nil {
		return Result{}, err
	}
	ctx := cfg.ctx()
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	var res Result
	// Double-buffered inboxes: the current round's inboxes are consumed
	// while the next round's fill, then the buffers swap and truncate.
	// Message values are structs, so nodes copying them out of a reused
	// slice stay valid.
	inboxes := make([][]msg.Message, g.N())
	next := make([][]msg.Message, g.N())
	if allDone(nodes) {
		res.Terminated = true
		return res, nil
	}
	if canceled(ctx) {
		res.Aborted = true
		return res, nil
	}
	for round := 0; round < maxRounds; round++ {
		var rt RoundTraffic
		for u := 0; u < g.N(); u++ {
			in := inboxes[u]
			msg.Sort(in)
			out := nodes[u].Step(round, in)
			for _, m := range out {
				sz := int64(m.Size())
				res.Messages++
				res.Bytes += sz
				var delivered int64
				for _, v := range g.Neighbors(u) {
					if cfg.Fault != nil && cfg.Fault.Drop(round, m, v) {
						continue
					}
					next[v] = append(next[v], m)
					delivered++
				}
				res.Deliveries += delivered
				if cfg.Observe != nil {
					k := &rt.Kinds[m.Kind]
					k.Messages++
					k.Bytes += sz
					k.Deliveries += delivered
				}
			}
		}
		if cfg.Observe != nil {
			rt.Round = round
			for _, k := range rt.Kinds {
				rt.Messages += k.Messages
				rt.Deliveries += k.Deliveries
				rt.Bytes += k.Bytes
			}
			cfg.Observe(rt)
		}
		inboxes, next = next, inboxes
		for u := range next {
			next[u] = next[u][:0]
		}
		res.Rounds = round + 1
		if allDone(nodes) {
			res.Terminated = true
			return res, nil
		}
		if canceled(ctx) {
			res.Aborted = true
			return res, nil
		}
	}
	return res, nil
}
