package net

import (
	"fmt"
	gonet "net"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"dima/internal/graph"
	"dima/internal/msg"
)

// NodeFactory rebuilds the protocol nodes of one vertex shard inside a
// node process: one Node per vertex in [lo, hi), each implementing
// StateNode, constructed exactly as the coordinator constructs its
// twins — same graph, same options decoded from spec, same derived RNG
// streams — so the distributed run is byte-identical to an in-process
// one. Protocol packages register their factories in init (the core
// package registers "dima/edge/v1" and "dima/strong/v1").
type NodeFactory func(g *graph.Graph, spec []byte, lo, hi int) ([]Node, error)

var (
	factoryMu     sync.RWMutex
	nodeFactories = map[string]NodeFactory{}
)

// RegisterNodeFactory makes a factory available to node processes under
// name. It panics on empty names, nil factories, and duplicates.
func RegisterNodeFactory(name string, f NodeFactory) {
	if name == "" || f == nil {
		panic("net: RegisterNodeFactory with empty name or nil factory")
	}
	factoryMu.Lock()
	defer factoryMu.Unlock()
	if _, dup := nodeFactories[name]; dup {
		panic("net: duplicate node factory " + name)
	}
	nodeFactories[name] = f
}

func lookupNodeFactory(name string) (NodeFactory, bool) {
	factoryMu.RLock()
	defer factoryMu.RUnlock()
	f, ok := nodeFactories[name]
	return f, ok
}

func registeredFactoryNames() []string {
	factoryMu.RLock()
	defer factoryMu.RUnlock()
	names := make([]string, 0, len(nodeFactories))
	for name := range nodeFactories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MaybeNodeMain turns the current process into a cluster node when the
// DIMA_NODE_* environment says the coordinator spawned it for that; it
// then never returns (os.Exit). In a plain invocation it is a no-op.
// Binaries usable as spawn-mode node processes (and test binaries whose
// tests run RunTCP with an empty Command) must call it first thing in
// main / TestMain, before flag parsing.
func MaybeNodeMain() {
	addr := os.Getenv(envNodeAddr)
	if addr == "" {
		return
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dimanode:", err)
		os.Exit(1)
	}
	shard, err := strconv.Atoi(os.Getenv(envNodeShard))
	if err != nil {
		fail(fmt.Errorf("bad %s: %v", envNodeShard, err))
	}
	shards, err := strconv.Atoi(os.Getenv(envNodeShards))
	if err != nil {
		fail(fmt.Errorf("bad %s: %v", envNodeShards, err))
	}
	token, err := strconv.ParseUint(os.Getenv(envNodeToken), 10, 64)
	if err != nil {
		fail(fmt.Errorf("bad %s: %v", envNodeToken, err))
	}
	if err := NodeMain(addr, shard, shards, token); err != nil {
		fail(err)
	}
	os.Exit(0)
}

// NodeMain dials the coordinator and runs the node side of the cluster
// protocol to completion. It is the whole life of a node process: cmd/
// dimanode calls it for externally launched nodes, MaybeNodeMain for
// spawned ones.
func NodeMain(addr string, shard, shards int, token uint64) error {
	conn, err := gonet.DialTimeout("tcp", addr, defaultBarrierTimeout)
	if err != nil {
		return fmt.Errorf("dial coordinator %s: %w", addr, err)
	}
	return ServeNode(conn, shard, shards, token)
}

// ServeNode runs the node half of the cluster protocol over conn, which
// it owns and closes. Local failures are reported to the coordinator in
// an error frame (best effort) as well as returned.
func ServeNode(conn gonet.Conn, shard, shards int, token uint64) error {
	defer conn.Close()
	if err := serveNode(conn, shard, shards, token); err != nil {
		conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		msg.WriteFrame(conn, frameError, []byte(err.Error()))
		return err
	}
	return nil
}

func serveNode(conn gonet.Conn, shard, shards int, token uint64) error {
	// No read deadlines here: the coordinator owns the barrier timeout,
	// and a dead coordinator closes the connection (or the kernel does),
	// which lands every blocked read on an error — a node process never
	// outlives its coordinator.
	fr := msg.NewFrameReader(conn, 0)
	hello := msg.Hello{Shard: shard, Shards: shards, Token: token}
	if err := msg.WriteFrame(conn, frameHello, hello.Append(nil)); err != nil {
		return fmt.Errorf("send hello: %w", err)
	}
	kind, payload, err := fr.Next()
	if err != nil {
		return fmt.Errorf("read welcome: %w", err)
	}
	if kind != frameWelcome {
		return fmt.Errorf("first coordinator frame is %s, want welcome", frameKindName(kind))
	}
	w, err := decodeWelcome(payload)
	if err != nil {
		return err
	}
	if w.shards != shards {
		return fmt.Errorf("welcome names %d shards, launched for %d", w.shards, shards)
	}
	factory, ok := lookupNodeFactory(w.factory)
	if !ok {
		return fmt.Errorf("unknown node factory %q (registered: %v)", w.factory, registeredFactoryNames())
	}
	nodes, err := factory(w.g, w.spec, w.lo, w.hi)
	if err != nil {
		return fmt.Errorf("factory %q: %w", w.factory, err)
	}
	if len(nodes) != w.hi-w.lo {
		return fmt.Errorf("factory %q built %d nodes for range [%d, %d)", w.factory, len(nodes), w.lo, w.hi)
	}
	states := make([]StateNode, len(nodes))
	for i, n := range nodes {
		sn, ok := n.(StateNode)
		if !ok || n.ID() != w.lo+i {
			return fmt.Errorf("factory %q node %d: want StateNode with id %d, got %T id %d",
				w.factory, i, w.lo+i, n, n.ID())
		}
		states[i] = sn
	}
	if err := msg.WriteFrame(conn, frameReady, nil); err != nil {
		return fmt.Errorf("send ready: %w", err)
	}

	inboxes := make([][]msg.Message, len(nodes))
	var outb []broadcast
	var buf []byte
	for {
		kind, payload, err := fr.Next()
		if err != nil {
			return fmt.Errorf("read coordinator frame: %w", err)
		}
		switch kind {
		case frameRound:
			for i := range inboxes {
				inboxes[i] = inboxes[i][:0]
			}
			round, err := decodeRound(payload, func(to int, m msg.Message) error {
				if to < w.lo || to >= w.hi {
					return fmt.Errorf("net: delivery to vertex %d outside shard [%d, %d)", to, w.lo, w.hi)
				}
				inboxes[to-w.lo] = append(inboxes[to-w.lo], m)
				return nil
			})
			if err != nil {
				return err
			}
			outb = outb[:0]
			for i, n := range nodes {
				in := inboxes[i]
				msg.Sort(in)
				for _, m := range n.Step(round, in) {
					outb = append(outb, broadcast{from: w.lo + i, m: m})
				}
			}
			// Same evaluation point as RunSync's allDone: after every
			// node stepped the round.
			done := true
			for _, n := range nodes {
				if !n.Done() {
					done = false
					break
				}
			}
			buf = appendOutbox(buf[:0], round, done, outb)
			if err := msg.WriteFrame(conn, frameOutbox, buf); err != nil {
				return fmt.Errorf("send outbox: %w", err)
			}
		case frameHarvest:
			if len(payload) != 0 {
				return fmt.Errorf("net: %d trailing bytes after harvest frame", len(payload))
			}
			blobs := make([][]byte, len(states))
			for i, sn := range states {
				blobs[i] = sn.AppendState(nil)
			}
			buf = appendState(buf[:0], w.lo, blobs)
			if err := msg.WriteFrame(conn, frameState, buf); err != nil {
				return fmt.Errorf("send state: %w", err)
			}
		case frameShutdown:
			if len(payload) != 0 {
				return fmt.Errorf("net: %d trailing bytes after shutdown frame", len(payload))
			}
			return nil
		default:
			return fmt.Errorf("unexpected coordinator frame %s", frameKindName(kind))
		}
	}
}
