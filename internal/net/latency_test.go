package net

import (
	"testing"

	"dima/internal/gen"
	"dima/internal/graph"
)

func TestMakespanUniform(t *testing.T) {
	g := gen.Cycle(6)
	// Uniform unit delays: every round costs exactly 1.
	got, err := Makespan(g, 10, UniformLatency(1))
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("uniform makespan = %v, want 10", got)
	}
}

func TestMakespanZeroRoundsAndEmpty(t *testing.T) {
	if got, err := Makespan(gen.Cycle(5), 0, UniformLatency(1)); err != nil || got != 0 {
		t.Fatalf("0 rounds: %v %v", got, err)
	}
	if got, err := Makespan(graph.New(0), 5, UniformLatency(1)); err != nil || got != 0 {
		t.Fatalf("empty graph: %v %v", got, err)
	}
	if _, err := Makespan(gen.Cycle(5), -1, UniformLatency(1)); err == nil {
		t.Fatal("negative rounds accepted")
	}
}

func TestMakespanIsolatedVertices(t *testing.T) {
	// No links: nodes never wait, makespan 0 (local steps are free in
	// this model).
	got, err := Makespan(graph.New(4), 7, UniformLatency(3))
	if err != nil || got != 0 {
		t.Fatalf("isolated: %v %v", got, err)
	}
}

// pathLatency gives a single slow directed link in an otherwise fast path.
type pathLatency struct{ slowFrom, slowTo int }

func (p pathLatency) Delay(u, v int) float64 {
	if u == p.slowFrom && v == p.slowTo {
		return 10
	}
	return 1
}

func TestMakespanCriticalPathNotWorstCase(t *testing.T) {
	// Path 0-1-2-3 with one slow link 0->1. The slow link delays node 1
	// (and transitively 2, 3) once per round in the worst case, but
	// rounds overlap: the makespan must be well below rounds × 10 yet
	// above rounds × 1.
	g := gen.Path(4)
	const rounds = 8
	got, err := Makespan(g, rounds, pathLatency{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got <= rounds || got >= rounds*10 {
		t.Fatalf("makespan %v outside (8, 80)", got)
	}
	// Every node waits for the slow link every round (node 1 directly),
	// so the critical path is rounds × 10 only if nothing overlaps —
	// here node 1's wait dominates: finish ≈ rounds*10.
	// Verify monotonicity instead of the exact value: more rounds, more
	// time.
	got2, err := Makespan(g, rounds+1, pathLatency{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got2 <= got {
		t.Fatalf("makespan not monotone: %v then %v", got, got2)
	}
}

func TestMakespanRandomLatencyBounds(t *testing.T) {
	g := gen.Grid(5, 5)
	const rounds = 12
	lat := RandomLatency{Seed: 3, Min: 1, Max: 5}
	got, err := Makespan(g, rounds, lat)
	if err != nil {
		t.Fatal(err)
	}
	if got < rounds*1 || got > rounds*5 {
		t.Fatalf("makespan %v outside [%d, %d]", got, rounds, rounds*5)
	}
	// Deterministic in the seed.
	again, _ := Makespan(g, rounds, lat)
	if got != again {
		t.Fatal("random latency makespan not deterministic")
	}
	// The critical path should beat the naive rounds × max bound on a
	// graph with many alternative paths.
	if got >= rounds*5 {
		t.Fatalf("no overlap benefit: %v", got)
	}
}

func TestMakespanRejectsNonPositiveDelay(t *testing.T) {
	if _, err := Makespan(gen.Path(2), 3, UniformLatency(0)); err == nil {
		t.Fatal("zero delay accepted")
	}
}

func TestRandomLatencyRange(t *testing.T) {
	lat := RandomLatency{Seed: 9, Min: 2, Max: 4}
	for u := 0; u < 10; u++ {
		for v := 0; v < 10; v++ {
			d := lat.Delay(u, v)
			if d < 2 || d > 4 {
				t.Fatalf("delay(%d,%d) = %v out of range", u, v, d)
			}
		}
	}
	// Asymmetric links get independent delays (directed model).
	if lat.Delay(1, 2) == lat.Delay(2, 1) {
		t.Log("note: symmetric delays by chance")
	}
	// Degenerate range collapses to Min.
	if (RandomLatency{Min: 3, Max: 3}).Delay(0, 1) != 3 {
		t.Fatal("degenerate range wrong")
	}
}

// Regression for the endpoint-packing bug: Delay used to hash
// u<<32 | low32(v), so any receiver ids congruent mod 2^32 — and any
// sender ids differing only above bit 31 — collided onto the same
// delay. Each endpoint must contribute its full width to the hash.
func TestRandomLatencyNoEndpointAliasing(t *testing.T) {
	lat := RandomLatency{Seed: 7, Min: 1, Max: 100}
	collisions := [][2][2]int{
		// Receiver truncation: v and v + 2^32 aliased.
		{{0, 5}, {0, 5 + (1 << 32)}},
		// Sender overflow: u<<32 discarded u's high bits.
		{{3, 7}, {3 + (1 << 32), 7}},
		// Cross-endpoint bleed: (u, v) vs (u+1, v - 2^32).
		{{1, 1 << 32}, {2, 0}},
	}
	for _, c := range collisions {
		a := lat.Delay(c[0][0], c[0][1])
		b := lat.Delay(c[1][0], c[1][1])
		if a == b {
			t.Errorf("Delay%v == Delay%v == %v: endpoints alias", c[0], c[1], a)
		}
	}
	// And the directed model still gives links their own delays.
	if lat.Delay(1, 2) == lat.Delay(2, 1) {
		t.Error("reverse link unexpectedly equal")
	}
}

func TestRandomLatencyValidate(t *testing.T) {
	cases := []struct {
		lat RandomLatency
		ok  bool
	}{
		{RandomLatency{Min: 1, Max: 5}, true},
		{RandomLatency{Min: 3, Max: 3}, true},
		{RandomLatency{Min: 0, Max: 2}, true},
		{RandomLatency{Min: -1, Max: 5}, false},
		{RandomLatency{Min: 5, Max: 1}, false},
	}
	for _, c := range cases {
		err := c.lat.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.lat, err, c.ok)
		}
	}
	// Makespan rejects invalid models up front, matching its existing
	// non-positive-delay check.
	if _, err := Makespan(gen.Path(3), 4, RandomLatency{Min: 5, Max: 1}); err == nil {
		t.Fatal("Makespan accepted inverted RandomLatency range")
	}
	if _, err := Makespan(gen.Path(3), 4, RandomLatency{Min: -2, Max: 1}); err == nil {
		t.Fatal("Makespan accepted negative RandomLatency.Min")
	}
}
