package net

import (
	"encoding/binary"
	"fmt"

	"dima/internal/graph"
	"dima/internal/msg"
)

// Cluster frame grammar (docs/CLUSTER.md). Every payload decoder here
// is strict: bytes left over after a successful parse are an error, so
// a codec mismatch between coordinator and node builds surfaces as a
// typed failure on the first divergent frame.
const (
	frameHello    msg.FrameKind = 0x01 // node → coord: msg.Hello
	frameWelcome  msg.FrameKind = 0x02 // coord → node: spec + graph + shard bounds
	frameReady    msg.FrameKind = 0x03 // node → coord: nodes constructed
	frameRound    msg.FrameKind = 0x04 // coord → node: round number + deliveries
	frameOutbox   msg.FrameKind = 0x05 // node → coord: round number + broadcasts + done bit
	frameHarvest  msg.FrameKind = 0x06 // coord → node: export final node state
	frameState    msg.FrameKind = 0x07 // node → coord: per-vertex state blobs
	frameShutdown msg.FrameKind = 0x08 // coord → node: run over, exit 0
	frameError    msg.FrameKind = 0x09 // node → coord: fatal node-side error text
)

func frameKindName(k msg.FrameKind) string {
	switch k {
	case frameHello:
		return "hello"
	case frameWelcome:
		return "welcome"
	case frameReady:
		return "ready"
	case frameRound:
		return "round"
	case frameOutbox:
		return "outbox"
	case frameHarvest:
		return "harvest"
	case frameState:
		return "state"
	case frameShutdown:
		return "shutdown"
	case frameError:
		return "error"
	}
	return fmt.Sprintf("frame(%#x)", uint8(k))
}

// AppendGraph appends the binary graph section: uvarint vertex count,
// uvarint edge count, then one (u, v) uvarint pair per edge in edge-id
// order. Graphs with removal holes are rejected by the engines before
// any frame is built, so edge ids are dense. Exported because the
// dimaserve cluster (internal/cluster) ships job graphs in the same
// section format.
func AppendGraph(buf []byte, g *graph.Graph) []byte {
	buf = binary.AppendUvarint(buf, uint64(g.N()))
	buf = binary.AppendUvarint(buf, uint64(g.M()))
	for _, e := range g.Edges() {
		buf = binary.AppendUvarint(buf, uint64(e.U))
		buf = binary.AppendUvarint(buf, uint64(e.V))
	}
	return buf
}

// DecodeGraph parses the binary graph section from the front of buf,
// returning the graph and the unconsumed tail. Edge insertion order is
// the wire order, so edge ids match the sender's exactly.
func DecodeGraph(buf []byte) (*graph.Graph, []byte, error) {
	dec := wireDec{buf: buf}
	n := dec.uvarint("vertex count")
	m := dec.uvarint("edge count")
	if dec.err != nil {
		return nil, nil, dec.err
	}
	if n > 1<<31 {
		return nil, nil, fmt.Errorf("net: implausible vertex count %d", n)
	}
	// Each edge costs at least two bytes on the wire.
	if m > uint64(len(dec.buf))/2 {
		return nil, nil, fmt.Errorf("net: implausible edge count %d for %d remaining bytes", m, len(dec.buf))
	}
	g := graph.New(int(n))
	for i := uint64(0); i < m; i++ {
		u := dec.uvarint("edge endpoint")
		v := dec.uvarint("edge endpoint")
		if dec.err != nil {
			return nil, nil, dec.err
		}
		if u >= n || v >= n {
			return nil, nil, fmt.Errorf("net: edge %d endpoints (%d, %d) out of range for %d vertices", i, u, v, n)
		}
		if _, err := g.AddEdge(int(u), int(v)); err != nil {
			return nil, nil, fmt.Errorf("net: edge %d: %w", i, err)
		}
	}
	return g, dec.buf, nil
}

// welcome is the coordinator's run description for one node process.
type welcome struct {
	factory string // registered NodeFactory name
	spec    []byte // opaque per-protocol options blob
	shards  int    // total shard count
	lo, hi  int    // this process's vertex range [lo, hi)
	g       *graph.Graph
}

func (w welcome) append(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(w.factory)))
	buf = append(buf, w.factory...)
	buf = binary.AppendUvarint(buf, uint64(len(w.spec)))
	buf = append(buf, w.spec...)
	buf = binary.AppendUvarint(buf, uint64(w.shards))
	buf = binary.AppendUvarint(buf, uint64(w.lo))
	buf = binary.AppendUvarint(buf, uint64(w.hi))
	return AppendGraph(buf, w.g)
}

func decodeWelcome(buf []byte) (welcome, error) {
	var w welcome
	dec := wireDec{buf: buf}
	w.factory = string(dec.lenBytes("factory name"))
	w.spec = append([]byte(nil), dec.lenBytes("spec blob")...)
	w.shards = int(dec.uvarint("shard count"))
	w.lo = int(dec.uvarint("shard lo"))
	w.hi = int(dec.uvarint("shard hi"))
	if dec.err != nil {
		return w, dec.err
	}
	g, rest, err := DecodeGraph(dec.buf)
	if err != nil {
		return w, err
	}
	if len(rest) != 0 {
		return w, fmt.Errorf("net: %d trailing bytes after welcome frame", len(rest))
	}
	w.g = g
	if w.shards < 1 || w.lo < 0 || w.hi < w.lo || w.hi > g.N() {
		return w, fmt.Errorf("net: welcome shard range [%d, %d) of %d invalid for %d vertices",
			w.lo, w.hi, w.shards, g.N())
	}
	return w, nil
}

// delivery is one routed message: the broadcast m must land in vertex
// to's next inbox. vertex ids ride next to the message because the
// Message.To field is the protocol addressee (possibly Broadcast), not
// the transport destination.
type delivery struct {
	to int
	m  msg.Message
}

// appendRound appends a round frame payload: uvarint round, uvarint
// delivery count, then (uvarint vertex, message) pairs.
func appendRound(buf []byte, round int, ds []delivery) []byte {
	buf = binary.AppendUvarint(buf, uint64(round))
	buf = binary.AppendUvarint(buf, uint64(len(ds)))
	for _, d := range ds {
		buf = binary.AppendUvarint(buf, uint64(d.to))
		buf = d.m.Append(buf)
	}
	return buf
}

// decodeRound parses a round frame, delivering each message through
// deliver(to, m) to avoid materializing a second slice. Strict: the
// payload must be consumed exactly.
func decodeRound(buf []byte, deliver func(to int, m msg.Message) error) (round int, err error) {
	dec := wireDec{buf: buf}
	round = int(dec.uvarint("round"))
	count := dec.uvarint("delivery count")
	if dec.err != nil {
		return 0, dec.err
	}
	if count > uint64(len(dec.buf)) {
		return 0, fmt.Errorf("net: implausible delivery count %d for %d remaining bytes", count, len(dec.buf))
	}
	for i := uint64(0); i < count; i++ {
		to := dec.uvarint("delivery vertex")
		if dec.err != nil {
			return 0, dec.err
		}
		m, used, err := msg.Decode(dec.buf)
		if err != nil {
			return 0, fmt.Errorf("net: delivery %d of %d: %w", i, count, err)
		}
		dec.buf = dec.buf[used:]
		if err := deliver(int(to), m); err != nil {
			return 0, err
		}
	}
	if len(dec.buf) != 0 {
		return 0, fmt.Errorf("net: %d trailing bytes after round frame", len(dec.buf))
	}
	return round, nil
}

// outboxFlagDone marks a shard whose every node reported Done after
// stepping this round.
const outboxFlagDone = 1 << 0

// appendOutbox appends an outbox frame payload: uvarint round, a flags
// byte, uvarint broadcast count, then (uvarint sender vertex, message)
// pairs in the order the senders were stepped (ascending vertex id).
func appendOutbox(buf []byte, round int, done bool, bs []broadcast) []byte {
	buf = binary.AppendUvarint(buf, uint64(round))
	var flags byte
	if done {
		flags |= outboxFlagDone
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(bs)))
	for _, b := range bs {
		buf = binary.AppendUvarint(buf, uint64(b.from))
		buf = b.m.Append(buf)
	}
	return buf
}

// broadcast is one sent message paired with its sending vertex — the
// routing key the coordinator fans out over g.Neighbors(from).
type broadcast struct {
	from int
	m    msg.Message
}

// decodeOutbox parses an outbox frame strictly.
func decodeOutbox(buf []byte) (round int, done bool, bs []broadcast, err error) {
	dec := wireDec{buf: buf}
	round = int(dec.uvarint("round"))
	flags := dec.byte("flags")
	count := dec.uvarint("broadcast count")
	if dec.err != nil {
		return 0, false, nil, dec.err
	}
	if flags&^byte(outboxFlagDone) != 0 {
		return 0, false, nil, fmt.Errorf("net: unknown outbox flag bits %#x", flags)
	}
	if count > uint64(len(dec.buf)) {
		return 0, false, nil, fmt.Errorf("net: implausible broadcast count %d for %d remaining bytes", count, len(dec.buf))
	}
	bs = make([]broadcast, 0, count)
	for i := uint64(0); i < count; i++ {
		from := dec.uvarint("sender vertex")
		if dec.err != nil {
			return 0, false, nil, dec.err
		}
		m, used, err := msg.Decode(dec.buf)
		if err != nil {
			return 0, false, nil, fmt.Errorf("net: broadcast %d of %d: %w", i, count, err)
		}
		dec.buf = dec.buf[used:]
		bs = append(bs, broadcast{from: int(from), m: m})
	}
	if len(dec.buf) != 0 {
		return 0, false, nil, fmt.Errorf("net: %d trailing bytes after outbox frame", len(dec.buf))
	}
	return round, flags&outboxFlagDone != 0, bs, nil
}

// appendState appends a state frame payload: uvarint blob count, then
// (uvarint vertex, uvarint length, blob) triples.
func appendState(buf []byte, lo int, blobs [][]byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(blobs)))
	for i, b := range blobs {
		buf = binary.AppendUvarint(buf, uint64(lo+i))
		buf = binary.AppendUvarint(buf, uint64(len(b)))
		buf = append(buf, b...)
	}
	return buf
}

// decodeState parses a state frame strictly, calling restore(vertex,
// blob) per entry. Blobs alias the payload buffer and must be consumed
// within the callback.
func decodeState(buf []byte, restore func(vertex int, blob []byte) error) error {
	dec := wireDec{buf: buf}
	count := dec.uvarint("state count")
	if dec.err != nil {
		return dec.err
	}
	if count > uint64(len(dec.buf))+1 {
		return fmt.Errorf("net: implausible state count %d for %d remaining bytes", count, len(dec.buf))
	}
	for i := uint64(0); i < count; i++ {
		vertex := dec.uvarint("state vertex")
		blob := dec.lenBytes("state blob")
		if dec.err != nil {
			return dec.err
		}
		if err := restore(int(vertex), blob); err != nil {
			return err
		}
	}
	if len(dec.buf) != 0 {
		return fmt.Errorf("net: %d trailing bytes after state frame", len(dec.buf))
	}
	return nil
}

// wireDec is a cursor over a frame payload that latches the first
// decode error, keeping multi-field parsers linear instead of nested.
type wireDec struct {
	buf []byte
	err error
}

func (d *wireDec) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("net: truncated %s", what)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *wireDec) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.err = fmt.Errorf("net: truncated %s", what)
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *wireDec) lenBytes(what string) []byte {
	n := d.uvarint(what + " length")
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)) {
		d.err = fmt.Errorf("net: %s of %d bytes exceeds the %d remaining", what, n, len(d.buf))
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}
