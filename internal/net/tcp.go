package net

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	gonet "net"
	"os"
	"os/exec"
	"strconv"
	"time"

	"dima/internal/graph"
	"dima/internal/msg"
)

// StateNode is a Node whose final state can cross a process boundary.
// The TCP engine requires it: node processes run the protocol on their
// own instances, and after the last round the coordinator restores each
// remote instance's exported state into the local twin it constructed
// (but never stepped), so the caller's post-run assembly sees exactly
// the objects an in-process engine would have produced.
type StateNode interface {
	Node
	// AppendState appends the node's harvestable state to buf. Only the
	// state the protocol's post-run assembly reads needs to survive the
	// trip; transient negotiation state does not.
	AppendState(buf []byte) []byte
	// RestoreState loads state exported by AppendState on an identically
	// constructed instance. data is only valid during the call. Strict:
	// trailing bytes are an error.
	RestoreState(data []byte) error
}

// NodeSpec tells node processes how to rebuild their vertex shard: a
// registered NodeFactory name plus an opaque options blob the factory
// decodes. The pair must determine node construction completely — with
// the graph and shard bounds from the welcome frame, a remote factory
// call must yield nodes byte-identical to the coordinator's own.
type NodeSpec struct {
	Factory string
	Spec    []byte
}

// TCPCluster configures the multi-process TCP engine. The zero value is
// not runnable: Nodes must be at least 1.
type TCPCluster struct {
	// Nodes is the number of node processes. Each owns a contiguous
	// vertex shard, split exactly as RunShard splits work among workers;
	// counts above the vertex count are clamped.
	Nodes int
	// Listen is the coordinator's listen address. Empty means a kernel-
	// assigned loopback port ("127.0.0.1:0"), the right choice for
	// spawned children; External runs set it to a reachable address.
	Listen string
	// Command is the argv used to spawn each node process; the child
	// receives its assignment via DIMA_NODE_* environment variables and
	// must call MaybeNodeMain before anything else. Empty means re-exec
	// the current binary (os.Executable). Ignored when External is set.
	Command []string
	// External, when set, spawns nothing: the operator launches the node
	// processes (e.g. dimanode -connect) and the coordinator waits for
	// them to dial in. No launch token protects the handshake in this
	// mode, so use it only on trusted networks.
	External bool
	// BarrierTimeout bounds every per-connection wait: handshake
	// accepts, round-frame writes, outbox reads, harvest. A node that
	// crashes or hangs surfaces as a NodeError within roughly this
	// duration. 0 means 30s.
	BarrierTimeout time.Duration
	// Stderr receives spawned children's stderr; nil means os.Stderr.
	Stderr io.Writer
}

const defaultBarrierTimeout = 30 * time.Second

func (tc *TCPCluster) timeout() time.Duration {
	if tc.BarrierTimeout <= 0 {
		return defaultBarrierTimeout
	}
	return tc.BarrierTimeout
}

// Engine adapts the cluster to the Engine signature, closing over the
// node spec the way RunSync closes over nothing.
func (tc *TCPCluster) Engine(spec NodeSpec) Engine {
	return func(g *graph.Graph, nodes []Node, cfg Config) (Result, error) {
		return RunTCP(tc, spec, g, nodes, cfg)
	}
}

// NodeError is the typed failure of one node process: which shard, in
// which communication round (-1 during setup), and why. A node killed
// mid-run surfaces as a NodeError wrapping the broken connection, never
// as a silent partial result.
type NodeError struct {
	Shard int
	Round int
	Err   error
}

func (e *NodeError) Error() string {
	if e.Round < 0 {
		return fmt.Sprintf("net: tcp node %d failed during setup: %v", e.Shard, e.Err)
	}
	return fmt.Sprintf("net: tcp node %d failed at round %d: %v", e.Shard, e.Round, e.Err)
}

func (e *NodeError) Unwrap() error { return e.Err }

// Environment variables carrying a spawned child's assignment.
const (
	envNodeAddr   = "DIMA_NODE_ADDR"
	envNodeShard  = "DIMA_NODE_SHARD"
	envNodeShards = "DIMA_NODE_SHARDS"
	envNodeToken  = "DIMA_NODE_TOKEN"
)

// RunTCP executes the protocol across tc.Nodes separate OS processes
// connected over TCP. The coordinator mirrors RunSync exactly: it owns
// routing, fault injection, traffic accounting, and the round barrier,
// while node processes step their vertex shards; per-round outboxes are
// re-delivered in canonical ascending-sender order. Results, colorings,
// and per-round telemetry are byte-identical to RunSync at every shard
// count, including under faults and mid-round cancel.
//
// The nodes slice plays the role it does for the in-process engines —
// except these instances are never stepped; after the run each remote
// node's state is restored into its local twin, so every Node must
// implement StateNode.
func RunTCP(tc *TCPCluster, spec NodeSpec, g *graph.Graph, nodes []Node, cfg Config) (Result, error) {
	if err := validate(g, nodes); err != nil {
		return Result{}, err
	}
	if g.EdgeIDBound() != g.M() {
		return Result{}, fmt.Errorf("net: graph has removal holes (%d ids, %d edges); compact before a cluster run",
			g.EdgeIDBound(), g.M())
	}
	for i, n := range nodes {
		if _, ok := n.(StateNode); !ok {
			return Result{}, fmt.Errorf("net: node %d (%T) does not implement StateNode", i, n)
		}
	}
	if tc == nil || tc.Nodes < 1 {
		return Result{}, fmt.Errorf("net: tcp cluster needs at least 1 node process")
	}
	if _, ok := lookupNodeFactory(spec.Factory); !ok {
		return Result{}, fmt.Errorf("net: node factory %q not registered", spec.Factory)
	}
	ctx := cfg.ctx()
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultMaxRounds
	}
	var res Result
	// The initial all-done and cancel checks run on the local twins
	// before any process spawns: construction is deterministic, so the
	// twins' initial state equals the remote instances'.
	if allDone(nodes) {
		res.Terminated = true
		return res, nil
	}
	if canceled(ctx) {
		res.Aborted = true
		return res, nil
	}

	shards := tc.Nodes
	if shards > g.N() {
		shards = g.N()
	}
	// Shard bounds identical to RunShard: contiguous ascending ranges,
	// so concatenating per-shard outboxes in shard order reproduces
	// RunSync's ascending-sender order.
	bounds := make([]int, shards+1)
	for s := 0; s <= shards; s++ {
		bounds[s] = s * g.N() / shards
	}
	owner := make([]int, g.N())
	for s := 0; s < shards; s++ {
		for u := bounds[s]; u < bounds[s+1]; u++ {
			owner[u] = s
		}
	}

	run, err := launchCluster(tc, shards)
	if err != nil {
		return Result{}, err
	}
	defer run.teardown()

	for s := 0; s < shards; s++ {
		run.buf = welcome{
			factory: spec.Factory,
			spec:    spec.Spec,
			shards:  shards,
			lo:      bounds[s],
			hi:      bounds[s+1],
			g:       g,
		}.append(run.buf[:0])
		if err := run.send(s, frameWelcome, run.buf); err != nil {
			return Result{}, &NodeError{Shard: s, Round: -1, Err: err}
		}
	}
	for s := 0; s < shards; s++ {
		if _, err := run.recv(s, frameReady); err != nil {
			return Result{}, &NodeError{Shard: s, Round: -1, Err: err}
		}
	}

	pending := make([][]delivery, shards)
	for round := 0; round < maxRounds; round++ {
		for s := 0; s < shards; s++ {
			run.buf = appendRound(run.buf[:0], round, pending[s])
			if err := run.send(s, frameRound, run.buf); err != nil {
				return Result{}, &NodeError{Shard: s, Round: round, Err: err}
			}
			pending[s] = pending[s][:0]
		}
		var rt RoundTraffic
		doneAll := true
		for s := 0; s < shards; s++ {
			payload, err := run.recv(s, frameOutbox)
			if err != nil {
				return Result{}, &NodeError{Shard: s, Round: round, Err: err}
			}
			r, done, bs, err := decodeOutbox(payload)
			if err != nil {
				return Result{}, &NodeError{Shard: s, Round: round, Err: err}
			}
			if r != round {
				return Result{}, &NodeError{Shard: s, Round: round,
					Err: fmt.Errorf("outbox for round %d, want %d", r, round)}
			}
			if !done {
				doneAll = false
			}
			for _, b := range bs {
				if b.from < bounds[s] || b.from >= bounds[s+1] {
					return Result{}, &NodeError{Shard: s, Round: round,
						Err: fmt.Errorf("broadcast from vertex %d outside shard [%d, %d)",
							b.from, bounds[s], bounds[s+1])}
				}
				m := b.m
				sz := int64(m.Size())
				res.Messages++
				res.Bytes += sz
				var delivered int64
				for _, v := range g.Neighbors(b.from) {
					if cfg.Fault != nil && cfg.Fault.Drop(round, m, v) {
						continue
					}
					pending[owner[v]] = append(pending[owner[v]], delivery{to: v, m: m})
					delivered++
				}
				res.Deliveries += delivered
				if cfg.Observe != nil {
					k := &rt.Kinds[m.Kind]
					k.Messages++
					k.Bytes += sz
					k.Deliveries += delivered
				}
			}
		}
		if cfg.Observe != nil {
			rt.Round = round
			for _, k := range rt.Kinds {
				rt.Messages += k.Messages
				rt.Deliveries += k.Deliveries
				rt.Bytes += k.Bytes
			}
			cfg.Observe(rt)
		}
		res.Rounds = round + 1
		if doneAll {
			res.Terminated = true
			break
		}
		if canceled(ctx) {
			res.Aborted = true
			break
		}
	}

	// Harvest: restore every remote node's final state into its local
	// twin so the caller's assembly code sees the run's outcome. This
	// runs on every exit from the round loop — termination, abort, and
	// max-rounds truncation all report the state actually reached.
	hround := res.Rounds
	for s := 0; s < shards; s++ {
		if err := run.send(s, frameHarvest, nil); err != nil {
			return Result{}, &NodeError{Shard: s, Round: hround, Err: err}
		}
	}
	for s := 0; s < shards; s++ {
		payload, err := run.recv(s, frameState)
		if err != nil {
			return Result{}, &NodeError{Shard: s, Round: hround, Err: err}
		}
		next := bounds[s]
		err = decodeState(payload, func(vertex int, blob []byte) error {
			if vertex != next {
				return fmt.Errorf("state for vertex %d, want %d", vertex, next)
			}
			next++
			return nodes[vertex].(StateNode).RestoreState(blob)
		})
		if err == nil && next != bounds[s+1] {
			err = fmt.Errorf("state for %d vertices, want %d", next-bounds[s], bounds[s+1]-bounds[s])
		}
		if err != nil {
			return Result{}, &NodeError{Shard: s, Round: hround, Err: err}
		}
	}
	for s := 0; s < shards; s++ {
		if err := run.send(s, frameShutdown, nil); err != nil {
			return Result{}, &NodeError{Shard: s, Round: hround, Err: err}
		}
	}
	return res, nil
}

// tcpRun is the coordinator's live cluster: listener, one connection
// and frame reader per shard, and (in spawn mode) the child processes.
type tcpRun struct {
	ln      gonet.Listener
	conns   []gonet.Conn
	frs     []*msg.FrameReader
	procs   []*exec.Cmd
	waits   []chan error
	buf     []byte
	timeout time.Duration
}

// launchCluster starts the listener, spawns (or awaits) the node
// processes, and completes the handshake with each. On error it tears
// everything down before returning.
func launchCluster(tc *TCPCluster, shards int) (*tcpRun, error) {
	addr := tc.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := gonet.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("net: cluster listen: %w", err)
	}
	run := &tcpRun{
		ln:      ln,
		conns:   make([]gonet.Conn, shards),
		frs:     make([]*msg.FrameReader, shards),
		timeout: tc.timeout(),
	}
	var token uint64
	if !tc.External {
		var tok [8]byte
		if _, err := rand.Read(tok[:]); err != nil {
			run.teardown()
			return nil, fmt.Errorf("net: cluster token: %w", err)
		}
		token = binary.BigEndian.Uint64(tok[:])
		if err := run.spawn(tc, shards, token); err != nil {
			run.teardown()
			return nil, err
		}
	}
	if err := run.handshake(shards, token); err != nil {
		run.teardown()
		return nil, err
	}
	return run, nil
}

// spawn launches one child process per shard, handing each its
// assignment through the DIMA_NODE_* environment.
func (run *tcpRun) spawn(tc *TCPCluster, shards int, token uint64) error {
	argv := tc.Command
	if len(argv) == 0 {
		self, err := os.Executable()
		if err != nil {
			return fmt.Errorf("net: cluster re-exec: %w", err)
		}
		argv = []string{self}
	}
	stderr := tc.Stderr
	if stderr == nil {
		stderr = os.Stderr
	}
	run.procs = make([]*exec.Cmd, 0, shards)
	run.waits = make([]chan error, 0, shards)
	for s := 0; s < shards; s++ {
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(),
			envNodeAddr+"="+run.ln.Addr().String(),
			envNodeShard+"="+strconv.Itoa(s),
			envNodeShards+"="+strconv.Itoa(shards),
			envNodeToken+"="+strconv.FormatUint(token, 10),
		)
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("net: cluster spawn node %d: %w", s, err)
		}
		wait := make(chan error, 1)
		go func() { wait <- cmd.Wait() }()
		run.procs = append(run.procs, cmd)
		run.waits = append(run.waits, wait)
	}
	return nil
}

// handshake accepts one connection per shard and validates each hello:
// token, shard-count agreement, in-range shard index, no duplicates.
func (run *tcpRun) handshake(shards int, token uint64) error {
	deadline := time.Now().Add(run.timeout)
	if tl, ok := run.ln.(*gonet.TCPListener); ok {
		tl.SetDeadline(deadline)
	}
	for got := 0; got < shards; got++ {
		conn, err := run.ln.Accept()
		if err != nil {
			return fmt.Errorf("net: cluster handshake (%d of %d nodes connected): %w%s",
				got, shards, err, run.deadChildren())
		}
		conn.SetReadDeadline(deadline)
		fr := msg.NewFrameReader(conn, 0)
		kind, payload, err := fr.Next()
		if err == nil && kind != frameHello {
			err = fmt.Errorf("first frame is %s, want hello", frameKindName(kind))
		}
		var h msg.Hello
		if err == nil {
			h, err = msg.DecodeHello(payload)
		}
		if err == nil {
			switch {
			case h.Token != token:
				err = fmt.Errorf("bad launch token")
			case h.Shards != shards:
				err = fmt.Errorf("node believes in %d shards, run has %d", h.Shards, shards)
			case h.Shard < 0 || h.Shard >= shards:
				err = fmt.Errorf("shard index %d out of range [0, %d)", h.Shard, shards)
			case run.conns[h.Shard] != nil:
				err = fmt.Errorf("shard %d connected twice", h.Shard)
			}
		}
		if err != nil {
			conn.Close()
			return fmt.Errorf("net: cluster handshake: %w", err)
		}
		run.conns[h.Shard] = conn
		run.frs[h.Shard] = fr
	}
	return nil
}

// deadChildren summarizes already-exited children for handshake errors.
func (run *tcpRun) deadChildren() string {
	out := ""
	for s, wait := range run.waits {
		select {
		case werr := <-wait:
			wait <- werr // keep the result for teardown
			out += fmt.Sprintf("; node %d exited: %v", s, werr)
		default:
		}
	}
	return out
}

// send writes one frame to shard s under the barrier deadline.
func (run *tcpRun) send(s int, kind msg.FrameKind, payload []byte) error {
	conn := run.conns[s]
	conn.SetWriteDeadline(time.Now().Add(run.timeout))
	if err := msg.WriteFrame(conn, kind, payload); err != nil {
		return run.explain(s, err)
	}
	return nil
}

// recv reads shard s's next frame under the barrier deadline, requiring
// kind want; an error frame from the node surfaces as its message.
func (run *tcpRun) recv(s int, want msg.FrameKind) ([]byte, error) {
	run.conns[s].SetReadDeadline(time.Now().Add(run.timeout))
	kind, payload, err := run.frs[s].Next()
	if err != nil {
		return nil, run.explain(s, err)
	}
	if kind == frameError {
		return nil, fmt.Errorf("node reported: %s", payload)
	}
	if kind != want {
		return nil, fmt.Errorf("unexpected %s frame, want %s", frameKindName(kind), frameKindName(want))
	}
	return payload, nil
}

// explain augments a connection error with the child's exit status when
// the process behind it is already gone — turning a bare "connection
// reset" into "node process exited: signal: killed".
func (run *tcpRun) explain(s int, err error) error {
	if s >= len(run.waits) {
		return err
	}
	// A kill and the resulting connection error race; give the wait
	// status a moment to arrive.
	select {
	case werr := <-run.waits[s]:
		run.waits[s] <- werr
		if werr != nil {
			return fmt.Errorf("node process exited (%v) during: %w", werr, err)
		}
		return fmt.Errorf("node process exited during: %w", err)
	case <-time.After(50 * time.Millisecond):
		return err
	}
}

// teardownKillDelay is how long teardown waits for children to exit on
// their own (they see their connection close and leave promptly) before
// escalating to SIGKILL.
const teardownKillDelay = 5 * time.Second

// teardown releases every resource a run acquired: connections, the
// listener, and — blocking until they are reaped — all child processes.
// Safe on partially constructed runs; after it returns no goroutine,
// FD, or child of this run remains.
func (run *tcpRun) teardown() {
	for _, conn := range run.conns {
		if conn != nil {
			conn.Close()
		}
	}
	if run.ln != nil {
		run.ln.Close()
	}
	if len(run.procs) == 0 {
		return
	}
	// All children share one grace deadline: each sees its connection
	// close and should exit on its own well before it expires.
	grace := time.Now().Add(teardownKillDelay)
	for s, wait := range run.waits {
		d := time.Until(grace)
		if d < 0 {
			d = 0
		}
		select {
		case <-wait:
			continue
		case <-time.After(d):
		}
		// Grace expired: kill and reap. Kill on a process that just
		// finished returns an error we can ignore.
		run.procs[s].Process.Kill()
		select {
		case <-wait:
		case <-time.After(teardownKillDelay):
			// Unkillable child (should not happen); abandon the wait
			// rather than hang the caller. The buffered channel lets the
			// wait goroutine finish whenever the kernel reaps it.
		}
	}
}
