package net_test

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	stdnet "net"
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dima/internal/graph"
	"dima/internal/msg"
	"dima/internal/net"
)

// TestMain lets this test binary serve as its own node process: RunTCP
// with an empty Command re-execs the running binary, and MaybeNodeMain
// diverts spawned copies into the node loop before any test runs.
func TestMain(m *testing.M) {
	net.MaybeNodeMain()
	os.Exit(m.Run())
}

func init() {
	net.RegisterNodeFactory("test/gossip/v1", gossipFactory)
	net.RegisterNodeFactory("test/kill/v1", killFactory)
	net.RegisterNodeFactory("test/hang/v1", hangFactory)
}

// gossipNode is a deterministic test protocol: for `rounds` rounds each
// node broadcasts one message tagged with its id and the round, and
// folds everything it hears into a running sum plus a per-round receipt
// log. The sum and log make up its harvestable state, so the test can
// compare remote executions field by field against RunSync.
type gossipNode struct {
	id     int
	rounds int
	sum    int64
	log    []int
}

func gossipSpec(rounds int) []byte { return binary.AppendUvarint(nil, uint64(rounds)) }

func gossipFactory(g *graph.Graph, spec []byte, lo, hi int) ([]net.Node, error) {
	rounds, n := binary.Uvarint(spec)
	if n <= 0 || n != len(spec) {
		return nil, fmt.Errorf("bad gossip spec")
	}
	nodes := make([]net.Node, 0, hi-lo)
	for u := lo; u < hi; u++ {
		nodes = append(nodes, &gossipNode{id: u, rounds: int(rounds)})
	}
	return nodes, nil
}

func (n *gossipNode) ID() int { return n.id }

func (n *gossipNode) Done() bool { return len(n.log) >= n.rounds }

func (n *gossipNode) Step(round int, inbox []msg.Message) []msg.Message {
	for _, m := range inbox {
		n.sum += int64(m.From)*1000 + int64(m.Edge) + int64(m.Color)
	}
	n.log = append(n.log, len(inbox))
	if n.Done() {
		return nil
	}
	return []msg.Message{{
		Kind: msg.KindInvite, From: n.id, To: msg.Broadcast,
		Edge: n.id*7 + round, Color: round,
	}}
}

func (n *gossipNode) AppendState(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(n.sum))
	buf = binary.AppendUvarint(buf, uint64(len(n.log)))
	for _, v := range n.log {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return buf
}

func (n *gossipNode) RestoreState(data []byte) error {
	sum, c := binary.Uvarint(data)
	if c <= 0 {
		return fmt.Errorf("bad gossip state")
	}
	data = data[c:]
	count, c := binary.Uvarint(data)
	if c <= 0 {
		return fmt.Errorf("bad gossip log count")
	}
	data = data[c:]
	n.sum = int64(sum)
	n.log = nil
	for i := uint64(0); i < count; i++ {
		v, c := binary.Uvarint(data)
		if c <= 0 {
			return fmt.Errorf("bad gossip log entry")
		}
		data = data[c:]
		n.log = append(n.log, int(v))
	}
	if len(data) != 0 {
		return fmt.Errorf("%d trailing bytes in gossip state", len(data))
	}
	return nil
}

// killNode SIGKILLs its own process when its trigger vertex reaches the
// trigger round — the kill -9 regression harness. Only node processes
// ever step it (the coordinator's twins are never stepped), so the test
// process itself is safe.
type killNode struct {
	gossipNode
	killVertex, killRound int
}

func killSpec(rounds, killVertex, killRound int) []byte {
	buf := binary.AppendUvarint(nil, uint64(rounds))
	buf = binary.AppendUvarint(buf, uint64(killVertex))
	return binary.AppendUvarint(buf, uint64(killRound))
}

func killFactory(g *graph.Graph, spec []byte, lo, hi int) ([]net.Node, error) {
	var vals [3]uint64
	for i := range vals {
		v, n := binary.Uvarint(spec)
		if n <= 0 {
			return nil, fmt.Errorf("bad kill spec")
		}
		vals[i] = v
		spec = spec[n:]
	}
	nodes := make([]net.Node, 0, hi-lo)
	for u := lo; u < hi; u++ {
		nodes = append(nodes, &killNode{
			gossipNode: gossipNode{id: u, rounds: int(vals[0])},
			killVertex: int(vals[1]),
			killRound:  int(vals[2]),
		})
	}
	return nodes, nil
}

func (n *killNode) Step(round int, inbox []msg.Message) []msg.Message {
	if n.id == n.killVertex && round == n.killRound {
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
	}
	return n.gossipNode.Step(round, inbox)
}

// hangNode blocks forever at its trigger, simulating a wedged node that
// must be caught by the barrier timeout (its process is then killed by
// teardown, so the sleep never finishes).
type hangNode struct{ killNode }

func hangFactory(g *graph.Graph, spec []byte, lo, hi int) ([]net.Node, error) {
	nodes, err := killFactory(g, spec, lo, hi)
	for i, n := range nodes {
		nodes[i] = &hangNode{killNode: *n.(*killNode)}
	}
	return nodes, err
}

func (n *hangNode) Step(round int, inbox []msg.Message) []msg.Message {
	if n.id == n.killVertex && round == n.killRound {
		select {}
	}
	return n.gossipNode.Step(round, inbox)
}

// testGraph builds a deterministic connected graph with some extra
// chords so shards exchange real traffic.
func testGraph(n int) *graph.Graph {
	g := graph.New(n)
	for u := 1; u < n; u++ {
		g.MustAddEdge(u-1, u)
	}
	for u := 0; u+3 < n; u += 2 {
		g.MustAddEdge(u, u+3)
	}
	return g
}

func gossipNodes(g *graph.Graph, rounds int) []net.Node {
	nodes, err := gossipFactory(g, gossipSpec(rounds), 0, g.N())
	if err != nil {
		panic(err)
	}
	return nodes
}

// leakCheck snapshots goroutine and FD counts and verifies both return
// to baseline (teardown leaves no goroutines, FDs, or children).
func leakCheck(t *testing.T) func() {
	t.Helper()
	goroutines := runtime.NumGoroutine()
	fds := countFDs(t)
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			g, f := runtime.NumGoroutine(), countFDs(t)
			if g <= goroutines && f <= fds {
				break
			}
			if time.Now().After(deadline) {
				t.Errorf("leak after teardown: %d goroutines (was %d), %d fds (was %d)",
					g, goroutines, f, fds)
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		assertNoChildren(t)
	}
}

func countFDs(t *testing.T) int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Skipf("no /proc fd accounting: %v", err)
	}
	return len(ents)
}

// assertNoChildren verifies no child process of this test binary
// survives a run (spawned nodes are reaped by teardown).
func assertNoChildren(t *testing.T) {
	t.Helper()
	tasks, err := os.ReadDir("/proc/self/task")
	if err != nil {
		return
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var kids []string
		for _, task := range tasks {
			b, err := os.ReadFile("/proc/self/task/" + task.Name() + "/children")
			if err == nil {
				kids = append(kids, strings.Fields(string(b))...)
			}
		}
		if len(kids) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("child processes leaked after teardown: pids %v", kids)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunTCPMatchesRunSync is the transport-level equivalence property:
// identical Results, per-round traffic streams, and harvested node
// state at every shard count, with and without faults.
func TestRunTCPMatchesRunSync(t *testing.T) {
	g := testGraph(23)
	faults := []net.FaultInjector{nil, net.DropRate{Seed: 7, P: 0.2}}
	for _, fault := range faults {
		var wantTraffic []net.RoundTraffic
		syncNodes := gossipNodes(g, 6)
		wantRes, err := net.RunSync(g, syncNodes, net.Config{
			Fault:   fault,
			Observe: func(rt net.RoundTraffic) { wantTraffic = append(wantTraffic, rt) },
		})
		if err != nil {
			t.Fatalf("RunSync: %v", err)
		}
		for _, shards := range []int{1, 2, 3, 5, 31} {
			t.Run(fmt.Sprintf("fault=%v/shards=%d", fault != nil, shards), func(t *testing.T) {
				defer leakCheck(t)()
				tc := &net.TCPCluster{Nodes: shards, BarrierTimeout: 30 * time.Second}
				var gotTraffic []net.RoundTraffic
				tcpNodes := gossipNodes(g, 6)
				gotRes, err := net.RunTCP(tc, net.NodeSpec{Factory: "test/gossip/v1", Spec: gossipSpec(6)},
					g, tcpNodes, net.Config{
						Fault:   fault,
						Observe: func(rt net.RoundTraffic) { gotTraffic = append(gotTraffic, rt) },
					})
				if err != nil {
					t.Fatalf("RunTCP: %v", err)
				}
				if gotRes != wantRes {
					t.Errorf("Result mismatch:\n tcp  %+v\n sync %+v", gotRes, wantRes)
				}
				if !reflect.DeepEqual(gotTraffic, wantTraffic) {
					t.Errorf("round traffic mismatch:\n tcp  %+v\n sync %+v", gotTraffic, wantTraffic)
				}
				for u := range tcpNodes {
					got, want := tcpNodes[u].(*gossipNode), syncNodes[u].(*gossipNode)
					if got.sum != want.sum || !reflect.DeepEqual(got.log, want.log) {
						t.Fatalf("node %d state: tcp sum=%d log=%v, sync sum=%d log=%v",
							u, got.sum, got.log, want.sum, want.log)
					}
				}
			})
		}
	}
}

// TestRunTCPCancel verifies mid-run cancellation aborts at the same
// round barrier RunSync aborts at, with identical partial results.
func TestRunTCPCancel(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(17)
	// Cancel from the round-3 observation point: both engines observe
	// rounds at the same barrier, so both abort after round 4.
	run := func(engine func([]net.Node, net.Config) (net.Result, error)) (net.Result, []net.RoundTraffic) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var traffic []net.RoundTraffic
		res, err := engine(gossipNodes(g, 10), net.Config{
			Ctx: ctx,
			Observe: func(rt net.RoundTraffic) {
				traffic = append(traffic, rt)
				if rt.Round == 3 {
					cancel()
				}
			},
		})
		if err != nil {
			t.Fatalf("engine: %v", err)
		}
		return res, traffic
	}
	wantRes, wantTraffic := run(func(nodes []net.Node, cfg net.Config) (net.Result, error) {
		return net.RunSync(g, nodes, cfg)
	})
	tc := &net.TCPCluster{Nodes: 3}
	gotRes, gotTraffic := run(func(nodes []net.Node, cfg net.Config) (net.Result, error) {
		return net.RunTCP(tc, net.NodeSpec{Factory: "test/gossip/v1", Spec: gossipSpec(10)}, g, nodes, cfg)
	})
	if !wantRes.Aborted || gotRes != wantRes {
		t.Errorf("aborted Result mismatch:\n tcp  %+v\n sync %+v", gotRes, wantRes)
	}
	if !reflect.DeepEqual(gotTraffic, wantTraffic) {
		t.Errorf("aborted traffic mismatch:\n tcp  %+v\n sync %+v", gotTraffic, wantTraffic)
	}
}

// TestRunTCPNodeKilled is the kill -9 regression: a node process dying
// mid-round must surface as a NodeError naming the shard and round —
// never a silent partial result — and teardown must reap everything.
func TestRunTCPNodeKilled(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(20)
	// 4 shards of 5 vertices; vertex 12 (shard 2) kills its process at
	// round 3.
	tc := &net.TCPCluster{Nodes: 4, BarrierTimeout: 10 * time.Second}
	nodes, err := killFactory(g, killSpec(50, 12, 3), 0, g.N())
	if err != nil {
		t.Fatal(err)
	}
	_, err = net.RunTCP(tc, net.NodeSpec{Factory: "test/kill/v1", Spec: killSpec(50, 12, 3)},
		g, nodes, net.Config{MaxRounds: 100})
	var ne *net.NodeError
	if !errors.As(err, &ne) {
		t.Fatalf("want *net.NodeError, got %v", err)
	}
	if ne.Shard != 2 || ne.Round != 3 {
		t.Errorf("NodeError names shard %d round %d, want shard 2 round 3 (%v)", ne.Shard, ne.Round, ne)
	}
	if !strings.Contains(err.Error(), "killed") && !strings.Contains(err.Error(), "exited") {
		t.Errorf("error does not mention the process death: %v", err)
	}
}

// TestRunTCPNodeHang verifies a wedged node trips the barrier timeout
// as a typed error instead of hanging the coordinator.
func TestRunTCPNodeHang(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(12)
	tc := &net.TCPCluster{Nodes: 2, BarrierTimeout: time.Second}
	nodes, err := hangFactory(g, killSpec(50, 9, 2), 0, g.N())
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = net.RunTCP(tc, net.NodeSpec{Factory: "test/hang/v1", Spec: killSpec(50, 9, 2)},
		g, nodes, net.Config{MaxRounds: 100})
	var ne *net.NodeError
	if !errors.As(err, &ne) {
		t.Fatalf("want *net.NodeError, got %v", err)
	}
	if ne.Shard != 1 || ne.Round != 2 {
		t.Errorf("NodeError names shard %d round %d, want shard 1 round 2 (%v)", ne.Shard, ne.Round, ne)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Errorf("hang detection took %v, want about the 1s barrier timeout", d)
	}
}

// TestRunTCPValidation covers the error paths that must fail before any
// process spawns.
func TestRunTCPValidation(t *testing.T) {
	g := testGraph(6)
	spec := net.NodeSpec{Factory: "test/gossip/v1", Spec: gossipSpec(2)}
	t.Run("no cluster", func(t *testing.T) {
		if _, err := net.RunTCP(nil, spec, g, gossipNodes(g, 2), net.Config{}); err == nil {
			t.Error("nil cluster accepted")
		}
	})
	t.Run("zero nodes", func(t *testing.T) {
		if _, err := net.RunTCP(&net.TCPCluster{}, spec, g, gossipNodes(g, 2), net.Config{}); err == nil {
			t.Error("zero node count accepted")
		}
	})
	t.Run("unknown factory", func(t *testing.T) {
		bad := net.NodeSpec{Factory: "test/没有/v0"}
		if _, err := net.RunTCP(&net.TCPCluster{Nodes: 2}, bad, g, gossipNodes(g, 2), net.Config{}); err == nil {
			t.Error("unknown factory accepted")
		}
	})
	t.Run("non-StateNode", func(t *testing.T) {
		nodes := gossipNodes(g, 2)
		nodes[3] = plainNode{id: 3}
		if _, err := net.RunTCP(&net.TCPCluster{Nodes: 2}, spec, g, nodes, net.Config{}); err == nil {
			t.Error("non-StateNode accepted")
		}
	})
	t.Run("removal holes", func(t *testing.T) {
		h := testGraph(6)
		if _, err := h.RemoveEdge(0, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := net.RunTCP(&net.TCPCluster{Nodes: 2}, spec, h, gossipNodes(h, 2), net.Config{}); err == nil {
			t.Error("graph with removal holes accepted")
		}
	})
}

type plainNode struct{ id int }

func (p plainNode) ID() int                               { return p.id }
func (p plainNode) Done() bool                            { return true }
func (p plainNode) Step(int, []msg.Message) []msg.Message { return nil }

// TestRunTCPInitialDone checks the pre-spawn fast paths: an all-done
// node set terminates, and a pre-canceled context aborts, both without
// launching any process.
func TestRunTCPInitialDone(t *testing.T) {
	g := testGraph(8)
	spec := net.NodeSpec{Factory: "test/gossip/v1", Spec: gossipSpec(0)}
	res, err := net.RunTCP(&net.TCPCluster{Nodes: 2}, spec, g, gossipNodes(g, 0), net.Config{})
	if err != nil || !res.Terminated || res.Rounds != 0 {
		t.Errorf("all-done run: res=%+v err=%v", res, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = net.RunTCP(&net.TCPCluster{Nodes: 2}, net.NodeSpec{Factory: "test/gossip/v1", Spec: gossipSpec(3)},
		g, gossipNodes(g, 3), net.Config{Ctx: ctx})
	if err != nil || !res.Aborted || res.Rounds != 0 {
		t.Errorf("pre-canceled run: res=%+v err=%v", res, err)
	}
}

// TestRunTCPExternalMode drives the External arm in-process: the test
// dials the coordinator itself, standing in for operator-launched
// dimanode processes.
func TestRunTCPExternalMode(t *testing.T) {
	defer leakCheck(t)()
	g := testGraph(14)
	const shards = 2
	// External mode publishes no address before RunTCP returns, so pick
	// a loopback port up front by binding and releasing it.
	addr := freeLoopbackAddr(t)
	tc := &net.TCPCluster{Nodes: shards, External: true, Listen: addr, BarrierTimeout: 10 * time.Second}
	// The "operator-launched" node halves run as goroutines of this
	// process, retrying until the coordinator has bound its listener.
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := net.NodeMain(addr, s, shards, 0); err == nil {
					return
				}
				time.Sleep(20 * time.Millisecond)
			}
		}(s)
	}
	syncNodes := gossipNodes(g, 5)
	wantRes, err := net.RunSync(g, syncNodes, net.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tcpNodes := gossipNodes(g, 5)
	gotRes, err := net.RunTCP(tc, net.NodeSpec{Factory: "test/gossip/v1", Spec: gossipSpec(5)},
		g, tcpNodes, net.Config{})
	wg.Wait()
	if err != nil {
		t.Fatalf("RunTCP external: %v", err)
	}
	if gotRes != wantRes {
		t.Errorf("external Result mismatch:\n tcp  %+v\n sync %+v", gotRes, wantRes)
	}
}

func freeLoopbackAddr(t *testing.T) string {
	t.Helper()
	l, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}
