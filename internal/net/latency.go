package net

import (
	"fmt"

	"dima/internal/graph"
	"dima/internal/rng"
)

// The batch-per-round discipline of RunChan is exactly an α-synchronizer
// over a reliable asynchronous network: a node advances to round r+1
// the moment it holds all of its neighbors' round-r batches. Under that
// discipline, the wall-clock completion time of a synchronous protocol
// over links with heterogeneous delays is determined by a critical path,
// not by (rounds × slowest link). LatencyModel computes it.

// LatencyModel assigns a fixed positive delay to each directed link.
type LatencyModel interface {
	// Delay returns the delivery delay (in abstract time units) of a
	// message sent from u to v along an edge. Must be > 0 and constant
	// for the analysis to be meaningful.
	Delay(u, v int) float64
}

// UniformLatency delays every link by the same constant.
type UniformLatency float64

// Delay implements LatencyModel.
func (c UniformLatency) Delay(u, v int) float64 { return float64(c) }

// RandomLatency draws an independent delay per directed link, uniform in
// [Min, Max], deterministically from the seed.
type RandomLatency struct {
	Seed     uint64
	Min, Max float64
}

// Validate reports configuration errors. Makespan rejects invalid
// models up front instead of letting Delay silently collapse the range
// to Min; a degenerate Min == Max range stays valid (constant delay).
func (r RandomLatency) Validate() error {
	if r.Min < 0 {
		return fmt.Errorf("net: RandomLatency.Min %v is negative", r.Min)
	}
	if r.Max < r.Min {
		return fmt.Errorf("net: RandomLatency range [%v, %v] inverted", r.Min, r.Max)
	}
	return nil
}

// Delay implements LatencyModel.
func (r RandomLatency) Delay(u, v int) float64 {
	if r.Max <= r.Min {
		return r.Min
	}
	// Chain each endpoint through its own Mix64 step. Packing both ids
	// into one word (u<<32 | low32(v)) would truncate ids >= 2^32 and
	// alias unrelated links onto the same delay.
	h := rng.Mix64(r.Seed ^ rng.Mix64(uint64(int64(u))))
	h = rng.Mix64(h ^ uint64(int64(v)))
	frac := float64(h>>11) / (1 << 53)
	return r.Min + frac*(r.Max-r.Min)
}

// Makespan computes the completion time of a rounds-round synchronous
// execution over g under the α-synchronizer with the given link delays:
// node u finishes round r once it has finished round r-1 and received
// every neighbor's round-(r-1) message, so
//
//	finish[u][r] = max( finish[u][r-1],
//	                    max_v ( finish[v][r-1] + Delay(v, u) ) )
//
// with finish[·][0] = 0. The returned value is the time by which every
// node has finished the last round; it equals rounds × maxDelay only in
// the worst case — on real delay distributions the critical path is
// shorter, which is the point of measuring it.
func Makespan(g *graph.Graph, rounds int, lat LatencyModel) (float64, error) {
	if rounds < 0 {
		return 0, fmt.Errorf("net: negative round count %d", rounds)
	}
	if v, ok := lat.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return 0, err
		}
	}
	n := g.N()
	finish := make([]float64, n)
	next := make([]float64, n)
	for r := 0; r < rounds; r++ {
		for u := 0; u < n; u++ {
			t := finish[u]
			for _, v := range g.Neighbors(u) {
				d := lat.Delay(v, u)
				if d <= 0 {
					return 0, fmt.Errorf("net: non-positive delay on link %d->%d", v, u)
				}
				if cand := finish[v] + d; cand > t {
					t = cand
				}
			}
			next[u] = t
		}
		finish, next = next, finish
	}
	makespan := 0.0
	for _, t := range finish {
		if t > makespan {
			makespan = t
		}
	}
	return makespan, nil
}
