package net

import (
	"context"
	"runtime"
	"testing"
	"time"

	"dima/internal/gen"
	"dima/internal/msg"
)

// chatterNode broadcasts every round until round `lifetime`, so a run
// lasts a known number of rounds — long enough to cancel mid-flight.
type chatterNode struct {
	id       int
	lifetime int
	round    int
}

func (c *chatterNode) ID() int { return c.id }

func (c *chatterNode) Step(round int, inbox []msg.Message) []msg.Message {
	c.round = round
	if round >= c.lifetime {
		return nil
	}
	return []msg.Message{{Kind: msg.KindUpdate, From: c.id, To: msg.Broadcast, Edge: -1, Color: -1}}
}

func (c *chatterNode) Done() bool { return c.round >= c.lifetime }

func chatterNodes(n, lifetime int) []Node {
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = &chatterNode{id: i, lifetime: lifetime}
	}
	return nodes
}

// ctxEngines maps each engine to its Ctx entry point, covering both the
// wrapper and the Config.Ctx plumbing underneath.
func ctxEngines() map[string]func(ctx context.Context, cfg Config) (Result, error) {
	g := gen.Cycle(8)
	return map[string]func(ctx context.Context, cfg Config) (Result, error){
		"sync": func(ctx context.Context, cfg Config) (Result, error) {
			return RunSyncCtx(ctx, g, chatterNodes(8, 20), cfg)
		},
		"chan": func(ctx context.Context, cfg Config) (Result, error) {
			return RunChanCtx(ctx, g, chatterNodes(8, 20), cfg)
		},
		"shard": func(ctx context.Context, cfg Config) (Result, error) {
			cfg.Workers = 3
			return RunShardCtx(ctx, g, chatterNodes(8, 20), cfg)
		},
	}
}

func TestCancelBeforeStartAbortsImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range ctxEngines() {
		res, err := run(ctx, Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Aborted || res.Terminated {
			t.Fatalf("%s: pre-canceled run: %+v", name, res)
		}
		if res.Rounds != 0 || res.Messages != 0 {
			t.Fatalf("%s: pre-canceled run did work: %+v", name, res)
		}
	}
}

// TestCancelMidRunIdenticalAcrossEngines cancels deterministically —
// from the round observer, which all engines invoke sequentially at the
// round barrier — and demands the identical partial Result everywhere.
func TestCancelMidRunIdenticalAcrossEngines(t *testing.T) {
	const cancelRound = 5
	var want Result
	for i, name := range []string{"sync", "chan", "shard"} {
		run := ctxEngines()[name]
		ctx, cancel := context.WithCancel(context.Background())
		res, err := run(ctx, Config{Observe: func(rt RoundTraffic) {
			if rt.Round == cancelRound {
				cancel()
			}
		}})
		cancel()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Aborted || res.Terminated {
			t.Fatalf("%s: canceled run: %+v", name, res)
		}
		// The cancel lands after round cancelRound completes, before the
		// next one starts.
		if res.Rounds != cancelRound+1 {
			t.Fatalf("%s: stopped after %d rounds, want %d", name, res.Rounds, cancelRound+1)
		}
		if i == 0 {
			want = res
			continue
		}
		if res != want {
			t.Fatalf("%s: partial result %+v, sync says %+v", name, res, want)
		}
	}
}

func TestCancelAfterDoneReportsTerminated(t *testing.T) {
	// A cancel landing in the same round the nodes finish loses:
	// Terminated wins and Aborted stays false (they are exclusive).
	const lifetime = 6
	g := gen.Cycle(8)
	for name, engine := range map[string]Engine{"sync": RunSync, "chan": RunChan, "shard": RunShard} {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := Config{Ctx: ctx, Observe: func(rt RoundTraffic) {
			if rt.Round == lifetime {
				cancel()
			}
		}}
		res, err := engine(g, chatterNodes(8, lifetime), cfg)
		cancel()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Terminated || res.Aborted {
			t.Fatalf("%s: same-round cancel: %+v", name, res)
		}
	}
}

func TestContextlessRunsUnchanged(t *testing.T) {
	// The Ctx-less entry points must stay byte-identical to the Ctx
	// variants under a background context.
	g := gen.Cycle(8)
	for name, pair := range map[string][2]func() (Result, error){
		"sync": {
			func() (Result, error) { return RunSync(g, chatterNodes(8, 10), Config{}) },
			func() (Result, error) { return RunSyncCtx(context.Background(), g, chatterNodes(8, 10), Config{}) },
		},
		"chan": {
			func() (Result, error) { return RunChan(g, chatterNodes(8, 10), Config{}) },
			func() (Result, error) { return RunChanCtx(context.Background(), g, chatterNodes(8, 10), Config{}) },
		},
		"shard": {
			func() (Result, error) { return RunShard(g, chatterNodes(8, 10), Config{}) },
			func() (Result, error) { return RunShardCtx(context.Background(), g, chatterNodes(8, 10), Config{}) },
		},
	} {
		plain, err1 := pair[0]()
		withCtx, err2 := pair[1]()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", name, err1, err2)
		}
		if plain != withCtx {
			t.Fatalf("%s: plain %+v != ctx %+v", name, plain, withCtx)
		}
		if !plain.Terminated || plain.Aborted {
			t.Fatalf("%s: %+v", name, plain)
		}
	}
}

// TestCancelLeaksNoGoroutines proves a canceled run tears its node and
// worker goroutines down: after cancel, the goroutine count returns to
// its baseline.
func TestCancelLeaksNoGoroutines(t *testing.T) {
	g := gen.Cycle(64)
	for name, run := range map[string]func(ctx context.Context, cfg Config) (Result, error){
		"chan": func(ctx context.Context, cfg Config) (Result, error) {
			return RunChanCtx(ctx, g, chatterNodes(64, 1000), cfg)
		},
		"shard": func(ctx context.Context, cfg Config) (Result, error) {
			cfg.Workers = 4
			return RunShardCtx(ctx, g, chatterNodes(64, 1000), cfg)
		},
	} {
		runtime.GC()
		base := runtime.NumGoroutine()
		for i := 0; i < 5; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			res, err := run(ctx, Config{Observe: func(rt RoundTraffic) {
				if rt.Round == 3 {
					cancel()
				}
			}})
			_ = res
			cancel()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		// Engines join their goroutines before returning, but give the
		// scheduler a moment under -race before declaring a leak.
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
			runtime.GC()
			time.Sleep(10 * time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > base {
			t.Fatalf("%s: %d goroutines after cancel, baseline %d", name, got, base)
		}
	}
}
