package net

import (
	"math"
	"testing"

	"dima/internal/msg"
)

func TestDropRateExtremes(t *testing.T) {
	m := msg.Message{From: 1}
	if (DropRate{Seed: 1, P: 0}).Drop(0, m, 2) {
		t.Fatal("P=0 dropped")
	}
	if !(DropRate{Seed: 1, P: 1}).Drop(0, m, 2) {
		t.Fatal("P=1 delivered")
	}
}

func TestDropRateStatistics(t *testing.T) {
	d := DropRate{Seed: 7, P: 0.3}
	dropped := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		m := msg.Message{Kind: msg.KindInvite, From: i % 50, Edge: i}
		if d.Drop(i%97, m, (i+1)%50) {
			dropped++
		}
	}
	rate := float64(dropped) / trials
	if math.Abs(rate-0.3) > 0.02 {
		t.Fatalf("drop rate %.3f, want ~0.3", rate)
	}
}

func TestDropRateDeterministic(t *testing.T) {
	d := DropRate{Seed: 9, P: 0.5}
	m := msg.Message{Kind: msg.KindClaim, From: 3, Edge: 12}
	first := d.Drop(4, m, 8)
	for i := 0; i < 10; i++ {
		if d.Drop(4, m, 8) != first {
			t.Fatal("DropRate not deterministic")
		}
	}
}

// The bit-packed key of the old hash aliased (From=1, To=0) with
// (From=0, To=2^20) — and generally any ids >= 2^20 — silently
// correlating drops between unrelated deliveries. With per-field mixing
// the two streams must disagree somewhere.
func TestDropRateNoLargeIDAliasing(t *testing.T) {
	d := DropRate{Seed: 11, P: 0.5}
	aliased := 0
	const trials = 512
	for round := 0; round < trials; round++ {
		a := d.Drop(round, msg.Message{Kind: msg.KindInvite, From: 1, Edge: 3}, 0)
		b := d.Drop(round, msg.Message{Kind: msg.KindInvite, From: 0, Edge: 3}, 1<<20)
		if a == b {
			aliased++
		}
	}
	if aliased == trials {
		t.Fatal("large-id deliveries fully correlated with small-id deliveries")
	}
	// Rounds beyond 2^24 used to shift into the From/To bits; they too
	// must produce independent decisions.
	same := 0
	for i := 0; i < trials; i++ {
		a := d.Drop(i, msg.Message{Kind: msg.KindInvite, From: 2, Edge: 5}, 3)
		b := d.Drop(i+1<<24, msg.Message{Kind: msg.KindInvite, From: 2, Edge: 5}, 3)
		if a == b {
			same++
		}
	}
	if same == trials {
		t.Fatal("high-round deliveries fully correlated with low-round deliveries")
	}
}

// A retransmission (Seq > 0) must face an independent drop decision:
// if the original's fate determined the retry's, a dropped message
// would be dropped forever and the recovery layer could never converge.
func TestDropRateSeqIndependence(t *testing.T) {
	d := DropRate{Seed: 13, P: 0.5}
	differ := false
	for round := 0; round < 256 && !differ; round++ {
		m := msg.Message{Kind: msg.KindResponse, From: 4, To: 7, Edge: 9}
		r := m
		r.Seq = 1
		differ = d.Drop(round, m, 7) != d.Drop(round, r, 7)
	}
	if !differ {
		t.Fatal("retransmissions share the original's drop decisions")
	}
}

func TestDropLink(t *testing.T) {
	d := DropLink{From: 2, To: 5}
	if !d.Drop(0, msg.Message{From: 2}, 5) {
		t.Fatal("target link delivered")
	}
	if d.Drop(0, msg.Message{From: 5}, 2) {
		t.Fatal("reverse link dropped")
	}
	if d.Drop(0, msg.Message{From: 2}, 6) {
		t.Fatal("other link dropped")
	}
}

func TestBlackout(t *testing.T) {
	b := Blackout{FromRound: 3, ToRound: 6}
	m := msg.Message{From: 0}
	for round, want := range map[int]bool{2: false, 3: true, 5: true, 6: false} {
		if b.Drop(round, m, 1) != want {
			t.Fatalf("round %d: drop = %v", round, !want)
		}
	}
}

func TestPartition(t *testing.T) {
	p := Partition{Side: []bool{true, true, false, false}}
	if !p.Drop(0, msg.Message{From: 0}, 2) {
		t.Fatal("cross-cut delivered")
	}
	if p.Drop(0, msg.Message{From: 0}, 1) {
		t.Fatal("same-side dropped")
	}
	if p.Drop(0, msg.Message{From: 2}, 3) {
		t.Fatal("same-side dropped")
	}
	// Out-of-range ids are passed through.
	if p.Drop(0, msg.Message{From: 9}, 1) {
		t.Fatal("out-of-range dropped")
	}
}

func TestFaultsChain(t *testing.T) {
	fs := Faults{DropLink{From: 0, To: 1}, Blackout{FromRound: 5, ToRound: 6}}
	if !fs.Drop(0, msg.Message{From: 0}, 1) {
		t.Fatal("first injector ignored")
	}
	if !fs.Drop(5, msg.Message{From: 3}, 2) {
		t.Fatal("second injector ignored")
	}
	if fs.Drop(0, msg.Message{From: 3}, 2) {
		t.Fatal("clean delivery dropped")
	}
	if (Faults{}).Drop(0, msg.Message{}, 0) {
		t.Fatal("empty chain dropped")
	}
}
