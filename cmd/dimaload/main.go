// Command dimaload is the load harness for dimaserve: N concurrent
// clients drive a mixed workload — job submissions polled to
// completion, result fetches, mutation-batch streams, live SSE event
// subscriptions, and cancellations — against a running server,
// measuring per-operation latency with fixed-memory P² quantile
// estimators (internal/stats) and checking the run against an error
// budget and optional p99 SLO.
//
// Usage:
//
//	dimaload -url http://127.0.0.1:8080 -clients 8 -duration 10s
//	dimaload -clients 16 -mix submit=4,mutate=3,events=2,cancel=1 \
//	         -out BENCH_PR6.json -max-error-rate 0 -slo-p99 500ms
//
// The exit status encodes the SLO verdict: 0 when every operation
// stayed inside its budget, 1 on any violation (CI gates on this), 2
// on a usage error. -out writes the machine-readable report; the human
// table always goes to stdout. docs/OBSERVABILITY.md has a quickstart.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dima/internal/rng"
	"dima/internal/stats"
)

func main() {
	var (
		baseURL  = flag.String("url", "http://127.0.0.1:8080", "dimaserve base URL")
		clients  = flag.Int("clients", 8, "concurrent client goroutines")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		jobN     = flag.Int("n", 200, "vertices per submitted job (er family)")
		jobDeg   = flag.Float64("deg", 6, "average degree per submitted job")
		batchLen = flag.Int("batch", 20, "mutations per mutate batch")
		mix      = flag.String("mix", "submit=4,mutate=3,events=2,cancel=1",
			"operation mix as weight pairs (submit, mutate, events, cancel)")
		seed     = flag.Uint64("seed", 1, "workload seed (client i derives seed+i)")
		opTO     = flag.Duration("op-timeout", 15*time.Second, "per-operation timeout")
		outPath  = flag.String("out", "", "write the machine-readable report (BENCH_PR6.json shape) here")
		maxErr   = flag.Float64("max-error-rate", 0, "error budget: max failed fraction per operation")
		sloP99   = flag.Duration("slo-p99", 0, "p99 latency SLO per operation (0 = no latency SLO)")
		quietRet = flag.Bool("quiet", false, "suppress the per-operation table")
	)
	flag.Parse()

	if *clients < 1 {
		usage(fmt.Errorf("-clients wants a positive count, got %d", *clients))
	}
	if *duration <= 0 {
		usage(fmt.Errorf("-duration wants a positive duration, got %v", *duration))
	}
	if *jobN < 2 || *jobN > 100_000 {
		usage(fmt.Errorf("-n wants [2, 100000], got %d", *jobN))
	}
	if *jobDeg <= 0 || *jobDeg > 64 {
		usage(fmt.Errorf("-deg wants (0, 64], got %v", *jobDeg))
	}
	if *batchLen < 1 || *batchLen > 10_000 {
		usage(fmt.Errorf("-batch wants [1, 10000], got %d", *batchLen))
	}
	if *maxErr < 0 || *maxErr > 1 {
		usage(fmt.Errorf("-max-error-rate wants [0, 1], got %v", *maxErr))
	}
	if *sloP99 < 0 {
		usage(fmt.Errorf("-slo-p99 wants a non-negative duration, got %v", *sloP99))
	}
	weights, err := parseMix(*mix)
	if err != nil {
		usage(err)
	}

	// The server must be up before the clock starts.
	if err := waitHealthy(*baseURL, 5*time.Second); err != nil {
		fatal(err)
	}

	ld := &loader{
		base:     strings.TrimRight(*baseURL, "/"),
		cols:     newCollectorSet(),
		jobN:     *jobN,
		jobDeg:   *jobDeg,
		batchLen: *batchLen,
		weights:  weights,
		opTO:     *opTO,
		client:   &http.Client{},
	}

	fmt.Fprintf(os.Stderr, "dimaload: %d clients, %v, mix %s against %s\n",
		*clients, *duration, *mix, ld.base)
	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < *clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ld.run(rng.New(*seed+uint64(i)), deadline)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := ld.cols.report(reportConfig{
		URL: ld.base, Clients: *clients, DurationSec: elapsed.Seconds(),
		Mix: *mix, N: *jobN, Deg: *jobDeg, Batch: *batchLen, Seed: *seed,
		MaxErrorRate: *maxErr, SLOP99Ms: float64(*sloP99) / float64(time.Millisecond),
	})
	if rep.Cluster = scrapeCluster(ld.base); rep.Cluster != nil {
		fmt.Fprintf(os.Stderr, "dimaload: cluster: %d workers, %d dispatched, %d retries, %d worker errors\n",
			rep.Cluster.Workers, rep.Cluster.Dispatched, rep.Cluster.Retries, rep.Cluster.WorkerErrors)
	}

	if !*quietRet {
		printTable(rep)
	}
	if *outPath != "" {
		if err := writeReport(*outPath, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dimaload: report written to %s\n", *outPath)
	}
	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "dimaload: SLO VIOLATION: %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dimaload: %d ops, 0 SLO violations\n", rep.Totals.Ops)
}

// parseMix decodes "submit=4,mutate=3,events=2,cancel=1".
func parseMix(s string) (map[string]int, error) {
	known := map[string]bool{"submit": true, "mutate": true, "events": true, "cancel": true}
	w := map[string]int{}
	total := 0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok || !known[k] {
			return nil, fmt.Errorf("-mix: want op=weight pairs over submit/mutate/events/cancel, got %q", part)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("-mix: weight for %s wants a non-negative integer, got %q", k, v)
		}
		w[k] = n
		total += n
	}
	if total == 0 {
		return nil, fmt.Errorf("-mix: all weights are zero")
	}
	return w, nil
}

func waitHealthy(base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(strings.TrimRight(base, "/") + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %v: %v", base, budget, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dimaload: %v\n", err)
	os.Exit(1)
}

func usage(err error) {
	fmt.Fprintf(os.Stderr, "dimaload: %v\n", err)
	os.Exit(2)
}

// ---------------------------------------------------------------------------
// Latency collection: one fixed-memory collector per operation.

// collector accumulates one operation's latencies without retaining
// samples: Welford moments plus P² estimators for p50/p95/p99.
type collector struct {
	mu        sync.Mutex
	online    stats.Online
	p50, p95  *stats.P2Quantile
	p99       *stats.P2Quantile
	errors    int
	throttled int
}

func newCollector() *collector {
	return &collector{
		p50: stats.NewP2Quantile(0.50),
		p95: stats.NewP2Quantile(0.95),
		p99: stats.NewP2Quantile(0.99),
	}
}

func (c *collector) record(d time.Duration, err error) {
	ms := float64(d) / float64(time.Millisecond)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.errors++
		return
	}
	c.online.Add(ms)
	c.p50.Add(ms)
	c.p95.Add(ms)
	c.p99.Add(ms)
}

func (c *collector) throttle() {
	c.mu.Lock()
	c.throttled++
	c.mu.Unlock()
}

// collectorSet maps operation name to collector.
type collectorSet struct {
	mu   sync.Mutex
	byOp map[string]*collector
}

func newCollectorSet() *collectorSet { return &collectorSet{byOp: map[string]*collector{}} }

func (s *collectorSet) get(op string) *collector {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.byOp[op]
	if !ok {
		c = newCollector()
		s.byOp[op] = c
	}
	return c
}

// ---------------------------------------------------------------------------
// Report shapes (BENCH_PR6.json).

type reportConfig struct {
	URL          string  `json:"url"`
	Clients      int     `json:"clients"`
	DurationSec  float64 `json:"durationSec"`
	Mix          string  `json:"mix"`
	N            int     `json:"n"`
	Deg          float64 `json:"deg"`
	Batch        int     `json:"batch"`
	Seed         uint64  `json:"seed"`
	MaxErrorRate float64 `json:"maxErrorRate"`
	SLOP99Ms     float64 `json:"sloP99Ms,omitempty"`
}

type opReport struct {
	Count     int     `json:"count"`
	Errors    int     `json:"errors"`
	Throttled int     `json:"throttled,omitempty"`
	ErrorRate float64 `json:"errorRate"`
	QPS       float64 `json:"qps"`
	MeanMs    float64 `json:"meanMs"`
	P50Ms     float64 `json:"p50Ms"`
	P95Ms     float64 `json:"p95Ms"`
	P99Ms     float64 `json:"p99Ms"`
	MaxMs     float64 `json:"maxMs"`
}

type report struct {
	Config reportConfig `json:"config"`
	Totals struct {
		Ops       int `json:"ops"`
		Errors    int `json:"errors"`
		Throttled int `json:"throttled"`
	} `json:"totals"`
	Ops        map[string]opReport `json:"ops"`
	Violations []string            `json:"violations"`
	// Cluster captures the front end's dispatch counters when the target
	// ran in cluster mode (scraped from /healthz after the run), so a
	// BENCH artifact records failover behavior — retries and worker
	// errors — alongside the latency distributions.
	Cluster *clusterReport `json:"cluster,omitempty"`
}

// clusterReport summarizes the target's cluster plane after the run.
type clusterReport struct {
	Workers      int   `json:"workers"`
	Dispatched   int64 `json:"dispatched"`
	Retries      int64 `json:"retries"`
	WorkerErrors int64 `json:"workerErrors"`
}

// scrapeCluster reads the target's /healthz and extracts the cluster
// section; nil when the target runs in local mode (no section) or the
// scrape fails (the load numbers still stand on their own).
func scrapeCluster(base string) *clusterReport {
	resp, err := http.Get(strings.TrimRight(base, "/") + "/healthz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var body struct {
		Cluster *struct {
			Workers      []json.RawMessage `json:"workers"`
			Dispatched   int64             `json:"dispatched"`
			Retries      int64             `json:"retries"`
			WorkerErrors int64             `json:"workerErrors"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Cluster == nil {
		return nil
	}
	return &clusterReport{
		Workers:      len(body.Cluster.Workers),
		Dispatched:   body.Cluster.Dispatched,
		Retries:      body.Cluster.Retries,
		WorkerErrors: body.Cluster.WorkerErrors,
	}
}

func (s *collectorSet) report(cfg reportConfig) report {
	rep := report{Config: cfg, Ops: map[string]opReport{}, Violations: []string{}}
	s.mu.Lock()
	defer s.mu.Unlock()
	for op, c := range s.byOp {
		c.mu.Lock()
		or := opReport{
			Count:     c.online.N() + c.errors,
			Errors:    c.errors,
			Throttled: c.throttled,
			MeanMs:    c.online.Mean(),
			P50Ms:     c.p50.Value(),
			P95Ms:     c.p95.Value(),
			P99Ms:     c.p99.Value(),
			MaxMs:     c.online.Max(),
		}
		c.mu.Unlock()
		if or.Count > 0 {
			or.ErrorRate = float64(or.Errors) / float64(or.Count)
		}
		if cfg.DurationSec > 0 {
			or.QPS = float64(or.Count) / cfg.DurationSec
		}
		rep.Ops[op] = or
		rep.Totals.Ops += or.Count
		rep.Totals.Errors += or.Errors
		rep.Totals.Throttled += or.Throttled

		if or.Count > 0 && or.ErrorRate > cfg.MaxErrorRate {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"%s: error rate %.4f exceeds budget %.4f (%d/%d failed)",
				op, or.ErrorRate, cfg.MaxErrorRate, or.Errors, or.Count))
		}
		if cfg.SLOP99Ms > 0 && or.Count > 0 && or.P99Ms > cfg.SLOP99Ms {
			rep.Violations = append(rep.Violations, fmt.Sprintf(
				"%s: p99 %.2fms exceeds SLO %.2fms", op, or.P99Ms, cfg.SLOP99Ms))
		}
	}
	sort.Strings(rep.Violations)
	return rep
}

func printTable(rep report) {
	tbl := stats.NewTable("op", "count", "err", "throttled", "qps", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms")
	ops := make([]string, 0, len(rep.Ops))
	for op := range rep.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		r := rep.Ops[op]
		tbl.AddRow(op, r.Count, r.Errors, r.Throttled,
			fmt.Sprintf("%.1f", r.QPS), fmt.Sprintf("%.2f", r.MeanMs),
			fmt.Sprintf("%.2f", r.P50Ms), fmt.Sprintf("%.2f", r.P95Ms),
			fmt.Sprintf("%.2f", r.P99Ms), fmt.Sprintf("%.2f", r.MaxMs))
	}
	_ = tbl.Write(os.Stdout)
}

func writeReport(path string, rep report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ---------------------------------------------------------------------------
// The workload.

// loader drives one mixed workload against a dimaserve instance.
type loader struct {
	base     string
	cols     *collectorSet
	jobN     int
	jobDeg   float64
	batchLen int
	weights  map[string]int
	opTO     time.Duration
	client   *http.Client

	poolMu sync.Mutex
	pool   []string // ids of completed edge-coloring jobs
}

// run is one client's loop: pick operations by weight until the
// deadline.
func (l *loader) run(r *rng.Rand, deadline time.Time) {
	ops := []string{"submit", "mutate", "events", "cancel"}
	total := 0
	for _, op := range ops {
		total += l.weights[op]
	}
	for time.Now().Before(deadline) {
		pick := r.Intn(total)
		var op string
		for _, o := range ops {
			if pick < l.weights[o] {
				op = o
				break
			}
			pick -= l.weights[o]
		}
		switch op {
		case "submit":
			l.opSubmit(r)
		case "mutate":
			l.opMutate(r)
		case "events":
			l.opEvents(r)
		case "cancel":
			l.opCancel(r)
		}
	}
}

// ctx returns a per-operation context.
func (l *loader) ctx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), l.opTO)
}

// popJob takes a random completed job from the pool (returns "" when
// empty); pushJob returns it.
func (l *loader) popJob(r *rng.Rand) string {
	l.poolMu.Lock()
	defer l.poolMu.Unlock()
	if len(l.pool) == 0 {
		return ""
	}
	i := r.Intn(len(l.pool))
	id := l.pool[i]
	l.pool[i] = l.pool[len(l.pool)-1]
	l.pool = l.pool[:len(l.pool)-1]
	return id
}

func (l *loader) pushJob(id string) {
	l.poolMu.Lock()
	defer l.poolMu.Unlock()
	l.pool = append(l.pool, id)
}

// jobStatus is the slice of the wire JobStatus dimaload needs.
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

func terminal(state string) bool {
	return state == "done" || state == "failed" || state == "canceled"
}

// submitJob posts one generator-spec submission, retrying through 429
// backpressure (counted as throttled, not errors), and records the
// "submit" latency of the accepted POST. Returns the job id.
func (l *loader) submitJob(r *rng.Rand, n int, deg float64, maxRounds int) (string, error) {
	ctx, cancel := l.ctx()
	defer cancel()
	body := fmt.Sprintf(`{"gen":{"family":"er","n":%d,"deg":%v,"seed":%d},"seed":%d,"maxRounds":%d}`,
		n, deg, r.Uint64()%1_000_000, r.Uint64()%1_000_000, maxRounds)
	col := l.cols.get("submit")
	for {
		start := time.Now()
		req, err := http.NewRequestWithContext(ctx, "POST", l.base+"/jobs", strings.NewReader(body))
		if err != nil {
			col.record(0, err)
			return "", err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := l.client.Do(req)
		if err != nil {
			col.record(0, err)
			return "", err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			col.throttle()
			// Honor Retry-After (jittered server-side), capped small so a
			// short load run keeps pushing.
			wait := 50 * time.Millisecond
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				wait = time.Duration(ra) * 100 * time.Millisecond
			}
			select {
			case <-ctx.Done():
				err := fmt.Errorf("submit: backpressure outlasted the op timeout")
				col.record(0, err)
				return "", err
			case <-time.After(wait):
			}
			continue
		}
		var st jobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			err = fmt.Errorf("submit: status %d", resp.StatusCode)
		} else if err != nil {
			err = fmt.Errorf("submit: decode: %v", err)
		}
		col.record(time.Since(start), err)
		if err != nil {
			return "", err
		}
		return st.ID, nil
	}
}

// pollDone polls a job's status to a terminal state, recording each
// poll as a "status" operation, and returns the final state.
func (l *loader) pollDone(id string) (string, error) {
	ctx, cancel := l.ctx()
	defer cancel()
	col := l.cols.get("status")
	for {
		start := time.Now()
		st, err := l.getStatus(ctx, id)
		col.record(time.Since(start), err)
		if err != nil {
			return "", err
		}
		if terminal(st.State) {
			return st.State, nil
		}
		select {
		case <-ctx.Done():
			err := fmt.Errorf("status: job %s not terminal before op timeout", id)
			l.cols.get("job").record(0, err)
			return "", err
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func (l *loader) getStatus(ctx context.Context, id string) (jobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", l.base+"/jobs/"+id, nil)
	if err != nil {
		return jobStatus{}, err
	}
	resp, err := l.client.Do(req)
	if err != nil {
		return jobStatus{}, err
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return jobStatus{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %d", resp.StatusCode)
	}
	return st, nil
}

// opSubmit: submit → poll to done ("job" is the end-to-end latency) →
// fetch the result → pool the job for mutate/events operations.
func (l *loader) opSubmit(r *rng.Rand) {
	start := time.Now()
	id, err := l.submitJob(r, l.jobN, l.jobDeg, 0)
	if err != nil {
		return
	}
	state, err := l.pollDone(id)
	if err != nil {
		return
	}
	jobCol := l.cols.get("job")
	if state != "done" {
		jobCol.record(0, fmt.Errorf("job %s finished %s", id, state))
		return
	}
	jobCol.record(time.Since(start), nil)

	// Result fetch rides along: the read path under load.
	ctx, cancel := l.ctx()
	defer cancel()
	col := l.cols.get("result")
	rstart := time.Now()
	req, _ := http.NewRequestWithContext(ctx, "GET", l.base+"/jobs/"+id+"/result", nil)
	resp, err := l.client.Do(req)
	if err == nil {
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("result: status %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	col.record(time.Since(rstart), err)
	if err == nil {
		l.pushJob(id)
	}
}

// opMutate: stream one ndjson mutation batch into a pooled job and
// read its repair report; latency is the full round trip.
func (l *loader) opMutate(r *rng.Rand) {
	id := l.popJob(r)
	if id == "" {
		l.opSubmit(r)
		return
	}
	defer l.pushJob(id)

	var sb strings.Builder
	fmt.Fprintf(&sb, `{"seq":%d,"muts":[`, r.Uint64()%1_000_000)
	for i := 0; i < l.batchLen; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		u := r.Intn(l.jobN)
		v := (u + 1 + r.Intn(l.jobN-1)) % l.jobN
		fmt.Fprintf(&sb, `{"op":"+","u":%d,"v":%d}`, u, v)
	}
	sb.WriteString("]}\n")

	ctx, cancel := l.ctx()
	defer cancel()
	col := l.cols.get("mutate")
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, "POST", l.base+"/jobs/"+id+"/mutate", strings.NewReader(sb.String()))
	if err != nil {
		col.record(0, err)
		return
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := l.client.Do(req)
	if err != nil {
		col.record(0, err)
		return
	}
	raw, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode != http.StatusOK:
		err = fmt.Errorf("mutate: status %d", resp.StatusCode)
	case rerr != nil:
		err = fmt.Errorf("mutate: read: %v", rerr)
	case len(raw) == 0:
		err = fmt.Errorf("mutate: empty response stream")
	}
	// A batch rejected for duplicate inserts is a valid server answer,
	// not a harness error: the random workload occasionally re-inserts
	// an existing edge. Only transport/status failures count.
	col.record(time.Since(start), err)
}

// opEvents: subscribe to a pooled job's SSE stream; latency is
// time-to-first-event. The stream is then read until the terminal
// status from replay (immediate for pooled jobs) and closed.
func (l *loader) opEvents(r *rng.Rand) {
	id := l.popJob(r)
	if id == "" {
		l.opSubmit(r)
		return
	}
	defer l.pushJob(id)

	ctx, cancel := l.ctx()
	defer cancel()
	col := l.cols.get("events")
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, "GET", l.base+"/jobs/"+id+"/events", nil)
	if err != nil {
		col.record(0, err)
		return
	}
	resp, err := l.client.Do(req)
	if err != nil {
		col.record(0, err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		col.record(0, fmt.Errorf("events: status %d", resp.StatusCode))
		return
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	first := time.Duration(0)
	sawTerminal := false
	for sc.Scan() {
		line := sc.Text()
		if first == 0 && strings.HasPrefix(line, "event: ") {
			first = time.Since(start)
		}
		// The pooled job is done, so its replayed history ends with a
		// terminal status; one mutation event would do as well.
		if strings.HasPrefix(line, "data: ") &&
			(strings.Contains(line, `"state":"done"`) || strings.Contains(line, `"state":"canceled"`) ||
				strings.Contains(line, `"state":"failed"`)) {
			sawTerminal = true
			break
		}
	}
	if !sawTerminal {
		col.record(0, fmt.Errorf("events: stream ended before a terminal status"))
		return
	}
	col.record(first, nil)
}

// opCancel: submit a job and immediately request cancellation; latency
// is the cancel round trip. Either outcome (canceled mid-run or done
// before the cancel landed) is a success.
func (l *loader) opCancel(r *rng.Rand) {
	// A taller instance than the submit mix so the cancel usually lands
	// mid-run; maxRounds keeps the worst case bounded.
	id, err := l.submitJob(r, l.jobN*2, l.jobDeg, 0)
	if err != nil {
		return
	}
	ctx, cancel := l.ctx()
	defer cancel()
	col := l.cols.get("cancel")
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, "POST", l.base+"/jobs/"+id+"/cancel", nil)
	if err != nil {
		col.record(0, err)
		return
	}
	resp, err := l.client.Do(req)
	if err != nil {
		col.record(0, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err = fmt.Errorf("cancel: status %d", resp.StatusCode)
	}
	col.record(time.Since(start), err)
	if err != nil {
		return
	}
	if state, err := l.pollDone(id); err == nil && state == "done" {
		// Completed before the cancel landed: still a valid pool entry.
		l.pushJob(id)
	}
}
