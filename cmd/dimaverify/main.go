// Command dimaverify checks a coloring (as written by dimacolor -json)
// against its graph and reports every violation. It exits 0 when the
// coloring is valid and complete, 1 otherwise.
//
// Usage:
//
//	dimaverify -graph er.graph -coloring out.json
package main

import (
	"flag"
	"fmt"
	"os"

	"dima/internal/graph"
	"dima/internal/graphio"
	"dima/internal/verify"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (edge-list format)")
		colorPath = flag.String("coloring", "", "coloring file (JSON)")
	)
	flag.Parse()
	if *graphPath == "" || *colorPath == "" {
		fmt.Fprintln(os.Stderr, "dimaverify: -graph and -coloring are required")
		os.Exit(2)
	}

	gf, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := graphio.ReadGraph(gf)
	gf.Close()
	if err != nil {
		fatal(err)
	}

	cf, err := os.Open(*colorPath)
	if err != nil {
		fatal(err)
	}
	c, err := graphio.ReadColoring(cf)
	cf.Close()
	if err != nil {
		fatal(err)
	}

	if c.N != g.N() || c.M != g.M() {
		fatal(fmt.Errorf("coloring is for a %d-vertex %d-edge graph; input has %d/%d",
			c.N, c.M, g.N(), g.M()))
	}

	var violations []verify.Violation
	switch c.Kind {
	case "edge":
		violations = verify.EdgeColoring(g, c.Colors)
	case "arc":
		violations = verify.StrongColoring(graph.NewSymmetric(g), c.Colors)
	}
	if len(violations) == 0 {
		distinct, maxc := verify.CountColors(c.Colors)
		fmt.Printf("valid %s coloring: %d colors (max index %d), Δ=%d\n",
			c.Kind, distinct, maxc, g.MaxDegree())
		return
	}
	for _, v := range violations {
		fmt.Printf("VIOLATION [%s]: %v\n", v.Kind, v)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dimaverify: %v\n", err)
	os.Exit(1)
}
