// Command dimaverify checks a coloring (as written by dimacolor -json)
// against its graph and reports every violation. It exits 0 when the
// coloring is valid and complete, 1 otherwise.
//
// -strong checks the distance-2 predicate: for an arc coloring this is
// the default check (Algorithm 2's guarantee) plus the Δ-based lower
// bound on the channel count; for an edge coloring it demands that even
// edges meeting at distance one carry distinct colors — a stronger
// property than Algorithm 1 promises, so violations then mean "not
// strong", not "broken".
//
// Usage:
//
//	dimaverify -graph er.graph -coloring out.json
//	dimaverify -graph er.graph -coloring out.json -strong
package main

import (
	"flag"
	"fmt"
	"os"

	"dima/internal/graph"
	"dima/internal/graphio"
	"dima/internal/verify"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (edge-list format)")
		colorPath = flag.String("coloring", "", "coloring file (JSON)")
		strong    = flag.Bool("strong", false, "check the distance-2 (strong) predicate instead of the kind's default")
	)
	flag.Parse()
	if *graphPath == "" || *colorPath == "" {
		fmt.Fprintln(os.Stderr, "dimaverify: -graph and -coloring are required")
		os.Exit(2)
	}

	gf, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := graphio.ReadGraph(gf)
	gf.Close()
	if err != nil {
		fatal(err)
	}

	cf, err := os.Open(*colorPath)
	if err != nil {
		fatal(err)
	}
	c, err := graphio.ReadColoring(cf)
	cf.Close()
	if err != nil {
		fatal(err)
	}

	if c.N != g.N() || c.M != g.M() {
		fatal(fmt.Errorf("coloring is for a %d-vertex %d-edge graph; input has %d/%d",
			c.N, c.M, g.N(), g.M()))
	}

	var violations []verify.Violation
	var d *graph.Digraph
	label := c.Kind
	switch c.Kind {
	case "edge":
		if *strong {
			violations = verify.StrongEdgeColoring(g, c.Colors)
			label = "strong edge"
		} else {
			violations = verify.EdgeColoring(g, c.Colors)
		}
	case "arc":
		// Arc colorings are strong by contract; -strong only adds the
		// lower-bound report below.
		d = graph.NewSymmetric(g)
		violations = verify.StrongColoring(d, c.Colors)
	}
	if len(violations) == 0 {
		distinct, maxc := verify.CountColors(c.Colors)
		fmt.Printf("valid %s coloring: %d colors (max index %d), Δ=%d\n",
			label, distinct, maxc, g.MaxDegree())
		if *strong && d != nil {
			lb := verify.StrongLowerBound(d)
			fmt.Printf("strong lower bound: >= %d channels (coloring uses %d)\n", lb, distinct)
		}
		return
	}
	for _, v := range violations {
		fmt.Printf("VIOLATION [%s]: %v\n", v.Kind, v)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dimaverify: %v\n", err)
	os.Exit(1)
}
