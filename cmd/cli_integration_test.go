// Package cmd_test builds the four CLI binaries and exercises them end
// to end: generate → color → verify round trips, baseline selection,
// the bench harness, and error paths.
package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "dima-cli")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"graphgen", "dimacolor", "dimaverify", "dimabench"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./"+tool)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			panic(tool + ": " + err.Error() + "\n" + string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, tool string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	return stdout.String(), stderr.String(), err
}

func TestPipelineGenerateColorVerify(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	cpath := filepath.Join(dir, "c.json")

	_, stderr, err := run(t, "graphgen", "-family", "er", "-n", "60", "-deg", "6", "-seed", "3", "-o", gpath)
	if err != nil {
		t.Fatalf("graphgen: %v\n%s", err, stderr)
	}
	if !strings.Contains(stderr, "n=60") {
		t.Fatalf("graphgen summary: %q", stderr)
	}

	stdout, stderr, err := run(t, "dimacolor", "-in", gpath, "-seed", "7", "-json", cpath)
	if err != nil {
		t.Fatalf("dimacolor: %v\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "terminated=true") {
		t.Fatalf("dimacolor output: %s", stdout)
	}

	stdout, stderr, err = run(t, "dimaverify", "-graph", gpath, "-coloring", cpath)
	if err != nil {
		t.Fatalf("dimaverify: %v\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "valid edge coloring") {
		t.Fatalf("dimaverify output: %s", stdout)
	}
}

func TestStrongPipeline(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	cpath := filepath.Join(dir, "c.json")
	if _, stderr, err := run(t, "graphgen", "-family", "geometric", "-n", "40", "-radius", "0.3", "-seed", "4", "-o", gpath); err != nil {
		t.Fatalf("graphgen: %v\n%s", err, stderr)
	}
	stdout, stderr, err := run(t, "dimacolor", "-in", gpath, "-strong", "-engine", "chan", "-json", cpath)
	if err != nil {
		t.Fatalf("dimacolor -strong: %v\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "algorithm 2") {
		t.Fatalf("output: %s", stdout)
	}
	stdout, _, err = run(t, "dimaverify", "-graph", gpath, "-coloring", cpath)
	if err != nil || !strings.Contains(stdout, "valid arc coloring") {
		t.Fatalf("dimaverify: %v %s", err, stdout)
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	cpath := filepath.Join(dir, "c.json")
	if _, _, err := run(t, "graphgen", "-family", "cycle", "-n", "6", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	if _, _, err := run(t, "dimacolor", "-in", gpath, "-json", cpath); err != nil {
		t.Fatal(err)
	}
	// Tamper: force all colors to 0.
	data, err := os.ReadFile(cpath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.ReplaceAll(string(data), "1", "0")
	tampered = strings.ReplaceAll(tampered, "2", "0")
	if err := os.WriteFile(cpath, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, _, err := run(t, "dimaverify", "-graph", gpath, "-coloring", cpath)
	if err == nil {
		t.Fatalf("dimaverify accepted a tampered coloring:\n%s", stdout)
	}
	if !strings.Contains(stdout, "VIOLATION") {
		t.Fatalf("no violation report:\n%s", stdout)
	}
}

func TestDimacolorBaselines(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	if _, _, err := run(t, "graphgen", "-family", "er", "-n", "50", "-deg", "6", "-seed", "8", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, err := run(t, "dimacolor", "-in", gpath, "-algo", "simple")
	if err != nil {
		t.Fatalf("simple: %v\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "simple (baseline)") {
		t.Fatalf("output: %s", stdout)
	}
	// Tree baseline rejects cyclic inputs.
	if _, stderr, err := run(t, "dimacolor", "-in", gpath, "-algo", "tree"); err == nil {
		t.Fatalf("tree baseline accepted a cyclic graph:\n%s", stderr)
	}
	// And -strong composes only with dima.
	if _, _, err := run(t, "dimacolor", "-in", gpath, "-algo", "simple", "-strong"); err == nil {
		t.Fatal("-strong with -algo simple accepted")
	}
}

func TestDimacolorTrace(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	if _, _, err := run(t, "graphgen", "-family", "path", "-n", "3", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	stdout, _, err := run(t, "dimacolor", "-in", gpath, "-trace")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "automaton timelines") || !strings.Contains(stdout, "node   0: C") {
		t.Fatalf("trace output:\n%s", stdout)
	}
}

func TestDimabenchQuick(t *testing.T) {
	stdout, stderr, err := run(t, "dimabench", "-exp", "fig3", "-scale", "0.04", "-plot=false")
	if err != nil {
		t.Fatalf("dimabench: %v\n%s", err, stderr)
	}
	for _, want := range []string{"== fig3", "rounds/Δ", "rounds ~ Δ fit", "shape"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("missing %q in:\n%s", want, stdout)
		}
	}
	// Unknown experiment errors out.
	if _, _, err := run(t, "dimabench", "-exp", "nonsense"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestDimabenchCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "out.csv")
	if _, stderr, err := run(t, "dimabench", "-exp", "fig6", "-scale", "0.02", "-plot=false", "-csv", csv); err != nil {
		t.Fatalf("dimabench: %v\n%s", err, stderr)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "group,rep,n,m,delta,rounds") {
		t.Fatalf("csv header: %q", string(data[:60]))
	}
}

func TestGraphgenFamiliesAndErrors(t *testing.T) {
	for _, fam := range []string{"gnp", "gnm", "ba", "ws", "regular", "powerlaw", "tree", "bipartite", "complete", "star", "grid", "hypercube"} {
		args := []string{"-family", fam, "-n", "12", "-k", "2", "-m", "10", "-seed", "5"}
		if _, stderr, err := run(t, "graphgen", args...); err != nil {
			t.Fatalf("%s: %v\n%s", fam, err, stderr)
		}
	}
	if _, _, err := run(t, "graphgen", "-family", "nope"); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, _, err := run(t, "graphgen", "-family", "ws", "-n", "4", "-k", "3"); err == nil {
		t.Fatal("invalid ws parameters accepted")
	}
}

func TestDimacolorRepsMode(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	if _, _, err := run(t, "graphgen", "-family", "er", "-n", "40", "-deg", "5", "-seed", "2", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, err := run(t, "dimacolor", "-in", gpath, "-reps", "5")
	if err != nil {
		t.Fatalf("reps mode: %v\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "5 runs") || !strings.Contains(stdout, "rounds: mean") {
		t.Fatalf("stats output:\n%s", stdout)
	}
	// -reps rejects -json.
	if _, _, err := run(t, "dimacolor", "-in", gpath, "-reps", "3", "-json", filepath.Join(dir, "x.json")); err == nil {
		t.Fatal("-reps with -json accepted")
	}
}
