// Package cmd_test builds the four CLI binaries and exercises them end
// to end: generate → color → verify round trips, baseline selection,
// the bench harness, and error paths.
package cmd_test

import (
	"errors"
	stdnet "net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "dima-cli")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"graphgen", "dimacolor", "dimaverify", "dimabench", "dimanode"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./"+tool)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			panic(tool + ": " + err.Error() + "\n" + string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, tool string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	return stdout.String(), stderr.String(), err
}

func TestPipelineGenerateColorVerify(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	cpath := filepath.Join(dir, "c.json")

	_, stderr, err := run(t, "graphgen", "-family", "er", "-n", "60", "-deg", "6", "-seed", "3", "-o", gpath)
	if err != nil {
		t.Fatalf("graphgen: %v\n%s", err, stderr)
	}
	if !strings.Contains(stderr, "n=60") {
		t.Fatalf("graphgen summary: %q", stderr)
	}

	stdout, stderr, err := run(t, "dimacolor", "-in", gpath, "-seed", "7", "-json", cpath)
	if err != nil {
		t.Fatalf("dimacolor: %v\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "terminated=true") {
		t.Fatalf("dimacolor output: %s", stdout)
	}

	stdout, stderr, err = run(t, "dimaverify", "-graph", gpath, "-coloring", cpath)
	if err != nil {
		t.Fatalf("dimaverify: %v\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "valid edge coloring") {
		t.Fatalf("dimaverify output: %s", stdout)
	}
}

func TestStrongPipeline(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	cpath := filepath.Join(dir, "c.json")
	if _, stderr, err := run(t, "graphgen", "-family", "geometric", "-n", "40", "-radius", "0.3", "-seed", "4", "-o", gpath); err != nil {
		t.Fatalf("graphgen: %v\n%s", err, stderr)
	}
	stdout, stderr, err := run(t, "dimacolor", "-in", gpath, "-strong", "-engine", "chan", "-json", cpath)
	if err != nil {
		t.Fatalf("dimacolor -strong: %v\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "algorithm 2") {
		t.Fatalf("output: %s", stdout)
	}
	stdout, _, err = run(t, "dimaverify", "-graph", gpath, "-coloring", cpath)
	if err != nil || !strings.Contains(stdout, "valid arc coloring") {
		t.Fatalf("dimaverify: %v %s", err, stdout)
	}
}

func TestVerifyCatchesTampering(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	cpath := filepath.Join(dir, "c.json")
	if _, _, err := run(t, "graphgen", "-family", "cycle", "-n", "6", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	if _, _, err := run(t, "dimacolor", "-in", gpath, "-json", cpath); err != nil {
		t.Fatal(err)
	}
	// Tamper: force all colors to 0.
	data, err := os.ReadFile(cpath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.ReplaceAll(string(data), "1", "0")
	tampered = strings.ReplaceAll(tampered, "2", "0")
	if err := os.WriteFile(cpath, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, _, err := run(t, "dimaverify", "-graph", gpath, "-coloring", cpath)
	if err == nil {
		t.Fatalf("dimaverify accepted a tampered coloring:\n%s", stdout)
	}
	if !strings.Contains(stdout, "VIOLATION") {
		t.Fatalf("no violation report:\n%s", stdout)
	}
}

func TestDimacolorBaselines(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	if _, _, err := run(t, "graphgen", "-family", "er", "-n", "50", "-deg", "6", "-seed", "8", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, err := run(t, "dimacolor", "-in", gpath, "-algo", "simple")
	if err != nil {
		t.Fatalf("simple: %v\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "simple (baseline)") {
		t.Fatalf("output: %s", stdout)
	}
	// Tree baseline rejects cyclic inputs.
	if _, stderr, err := run(t, "dimacolor", "-in", gpath, "-algo", "tree"); err == nil {
		t.Fatalf("tree baseline accepted a cyclic graph:\n%s", stderr)
	}
	// And -strong composes only with dima.
	if _, _, err := run(t, "dimacolor", "-in", gpath, "-algo", "simple", "-strong"); err == nil {
		t.Fatal("-strong with -algo simple accepted")
	}
}

func TestDimacolorTrace(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	if _, _, err := run(t, "graphgen", "-family", "path", "-n", "3", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	stdout, _, err := run(t, "dimacolor", "-in", gpath, "-trace")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout, "automaton timelines") || !strings.Contains(stdout, "node   0: C") {
		t.Fatalf("trace output:\n%s", stdout)
	}
}

func TestDimabenchQuick(t *testing.T) {
	stdout, stderr, err := run(t, "dimabench", "-exp", "fig3", "-scale", "0.04", "-plot=false")
	if err != nil {
		t.Fatalf("dimabench: %v\n%s", err, stderr)
	}
	for _, want := range []string{"== fig3", "rounds/Δ", "rounds ~ Δ fit", "shape"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("missing %q in:\n%s", want, stdout)
		}
	}
	// Unknown experiment errors out.
	if _, _, err := run(t, "dimabench", "-exp", "nonsense"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestDimabenchCSV(t *testing.T) {
	dir := t.TempDir()
	csv := filepath.Join(dir, "out.csv")
	if _, stderr, err := run(t, "dimabench", "-exp", "fig6", "-scale", "0.02", "-plot=false", "-csv", csv); err != nil {
		t.Fatalf("dimabench: %v\n%s", err, stderr)
	}
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "group,rep,n,m,delta,rounds") {
		t.Fatalf("csv header: %q", string(data[:60]))
	}
}

func TestGraphgenFamiliesAndErrors(t *testing.T) {
	for _, fam := range []string{"gnp", "gnm", "ba", "ws", "regular", "powerlaw", "tree", "bipartite", "complete", "star", "grid", "hypercube"} {
		args := []string{"-family", fam, "-n", "12", "-k", "2", "-m", "10", "-seed", "5"}
		if _, stderr, err := run(t, "graphgen", args...); err != nil {
			t.Fatalf("%s: %v\n%s", fam, err, stderr)
		}
	}
	if _, _, err := run(t, "graphgen", "-family", "nope"); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, _, err := run(t, "graphgen", "-family", "ws", "-n", "4", "-k", "3"); err == nil {
		t.Fatal("invalid ws parameters accepted")
	}
}

func TestDimacolorRepsMode(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	if _, _, err := run(t, "graphgen", "-family", "er", "-n", "40", "-deg", "5", "-seed", "2", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, err := run(t, "dimacolor", "-in", gpath, "-reps", "5")
	if err != nil {
		t.Fatalf("reps mode: %v\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "5 runs") || !strings.Contains(stdout, "rounds: mean") {
		t.Fatalf("stats output:\n%s", stdout)
	}
	// -reps rejects -json.
	if _, _, err := run(t, "dimacolor", "-in", gpath, "-reps", "3", "-json", filepath.Join(dir, "x.json")); err == nil {
		t.Fatal("-reps with -json accepted")
	}
}

func TestDimacolorMutate(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	mpath := filepath.Join(dir, "edits.txt")
	cpath := filepath.Join(dir, "c.json")
	if _, _, err := run(t, "graphgen", "-family", "path", "-n", "6", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	// Close the path into a cycle and delete one interior edge.
	if err := os.WriteFile(mpath, []byte("# edits\n+ 5 0\n- 2 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, err := run(t, "dimacolor", "-in", gpath, "-seed", "3", "-mutate", mpath, "-json", cpath)
	if err != nil {
		t.Fatalf("dimacolor -mutate: %v\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "mutate: ") || !strings.Contains(stdout, "+1 -1") {
		t.Fatalf("mutate report missing:\n%s", stdout)
	}
	if !strings.Contains(stdout, "mutated: m=5") {
		t.Fatalf("mutated summary missing:\n%s", stdout)
	}
	// The JSON carries the compacted mutated state: still 5 edges, and
	// it verifies against the mutated graph.
	g2 := filepath.Join(dir, "g2.graph")
	if err := os.WriteFile(g2, []byte("n 6\ne 0 1\ne 1 2\ne 3 4\ne 4 5\ne 5 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"m": 5`) {
		t.Fatalf("coloring json: %s", data)
	}
	// A delete of a missing edge rejects the whole batch atomically.
	if err := os.WriteFile(mpath, []byte("- 0 5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, stderr, err := run(t, "dimacolor", "-in", gpath, "-seed", "3", "-mutate", mpath); err == nil {
		t.Fatal("delete of missing edge accepted")
	} else if !strings.Contains(stderr, "deletes missing edge") {
		t.Fatalf("stderr: %s", stderr)
	}
	// -mutate composes only with plain Algorithm 1 runs.
	if _, _, err := run(t, "dimacolor", "-in", gpath, "-strong", "-mutate", mpath); err == nil {
		t.Fatal("-mutate with -strong accepted")
	}
}

func TestDimaverifyStrongFlag(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	cpath := filepath.Join(dir, "c.json")
	// Star: every edge shares the center, so any proper edge coloring is
	// automatically strong.
	if _, _, err := run(t, "graphgen", "-family", "star", "-n", "7", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	if _, _, err := run(t, "dimacolor", "-in", gpath, "-json", cpath); err != nil {
		t.Fatal(err)
	}
	stdout, _, err := run(t, "dimaverify", "-graph", gpath, "-coloring", cpath, "-strong")
	if err != nil || !strings.Contains(stdout, "valid strong edge coloring") {
		t.Fatalf("star -strong: %v\n%s", err, stdout)
	}
	// A long path's proper 2-coloring reuses colors at distance 1, so
	// the strong check must reject what the plain check accepts.
	if _, _, err := run(t, "graphgen", "-family", "path", "-n", "8", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	if _, _, err := run(t, "dimacolor", "-in", gpath, "-json", cpath); err != nil {
		t.Fatal(err)
	}
	if _, _, err := run(t, "dimaverify", "-graph", gpath, "-coloring", cpath); err != nil {
		t.Fatal("plain check rejected a proper coloring")
	}
	stdout, _, err = run(t, "dimaverify", "-graph", gpath, "-coloring", cpath, "-strong")
	if err == nil {
		t.Fatalf("strong check accepted a distance-1 reuse:\n%s", stdout)
	}
	if !strings.Contains(stdout, "distance2") {
		t.Fatalf("no distance2 violation:\n%s", stdout)
	}
	// Arc colorings get the lower-bound report.
	if _, _, err := run(t, "dimacolor", "-in", gpath, "-strong", "-json", cpath); err != nil {
		t.Fatal(err)
	}
	stdout, _, err = run(t, "dimaverify", "-graph", gpath, "-coloring", cpath, "-strong")
	if err != nil || !strings.Contains(stdout, "strong lower bound") {
		t.Fatalf("arc -strong: %v\n%s", err, stdout)
	}
}

// exitCode unwraps a run error into the process exit status (-1 when
// the command failed some other way).
func exitCode(err error) int {
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

// TestDimacolorTCPEngineMatchesSync is the CLI end of the tcp engine's
// equivalence guarantee: the same run through -engine tcp with real
// node processes must produce byte-identical coloring JSON and
// per-round telemetry to -engine sync.
func TestDimacolorTCPEngineMatchesSync(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	if _, stderr, err := run(t, "graphgen", "-family", "er", "-n", "80", "-deg", "6", "-seed", "9", "-o", gpath); err != nil {
		t.Fatalf("graphgen: %v\n%s", err, stderr)
	}
	outputs := func(engine string, extra ...string) (string, []byte, []byte) {
		t.Helper()
		jsonPath := filepath.Join(dir, engine+".json")
		metricsPath := filepath.Join(dir, engine+".jsonl")
		args := append([]string{"-in", gpath, "-seed", "5", "-engine", engine,
			"-json", jsonPath, "-metrics-out", metricsPath}, extra...)
		stdout, stderr, err := run(t, "dimacolor", args...)
		if err != nil {
			t.Fatalf("dimacolor -engine %s: %v\n%s", engine, err, stderr)
		}
		coloring, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		telemetry, err := os.ReadFile(metricsPath)
		if err != nil {
			t.Fatal(err)
		}
		return stdout, coloring, telemetry
	}
	syncOut, syncColoring, syncTelemetry := outputs("sync")
	tcpOut, tcpColoring, tcpTelemetry := outputs("tcp", "-nodes", "3")
	if !strings.Contains(tcpOut, "terminated=true") || !strings.Contains(tcpOut, "engine=tcp") {
		t.Fatalf("tcp output:\n%s", tcpOut)
	}
	if string(tcpColoring) != string(syncColoring) {
		t.Fatalf("coloring JSON diverged:\nsync: %s\ntcp: %s", syncColoring, tcpColoring)
	}
	if string(tcpTelemetry) != string(syncTelemetry) {
		t.Fatal("per-round telemetry JSONL diverged between sync and tcp")
	}
	// The result lines (colors, rounds, messages) must agree too.
	wantLine := resultLine(t, syncOut)
	if gotLine := resultLine(t, tcpOut); gotLine != wantLine {
		t.Fatalf("result lines diverged:\nsync: %s\ntcp: %s", wantLine, gotLine)
	}
	// Strong coloring through the cluster as well.
	syncStrong, _, err := run(t, "dimacolor", "-in", gpath, "-seed", "5", "-strong")
	if err != nil {
		t.Fatal(err)
	}
	tcpStrong, stderr, err := run(t, "dimacolor", "-in", gpath, "-seed", "5", "-strong", "-engine", "tcp", "-nodes", "2")
	if err != nil {
		t.Fatalf("strong tcp: %v\n%s", err, stderr)
	}
	if resultLine(t, tcpStrong) != resultLine(t, syncStrong) {
		t.Fatalf("strong result lines diverged:\nsync: %s\ntcp: %s", syncStrong, tcpStrong)
	}
}

func resultLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "result:") {
			return line
		}
	}
	t.Fatalf("no result line in:\n%s", out)
	return ""
}

// TestDimacolorTCPFlagValidation sweeps hostile values of the tcp
// engine's flags: every one must exit 2 (usage) before any socket or
// process work happens.
func TestDimacolorTCPFlagValidation(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	if _, _, err := run(t, "graphgen", "-family", "path", "-n", "4", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-engine", "tcp"},                                                    // no -nodes
		{"-engine", "tcp", "-nodes", "0"},                                     // zero nodes
		{"-engine", "tcp", "-nodes", "-3"},                                    // negative nodes
		{"-engine", "tcp", "-nodes", "99999999"},                              // implausible nodes
		{"-nodes", "4"},                                                       // -nodes without tcp
		{"-listen", ":7600"},                                                  // -listen without tcp
		{"-barrier-timeout", "5s"},                                            // -barrier-timeout without tcp
		{"-external"},                                                         // -external without tcp
		{"-engine", "tcp", "-nodes", "2", "-listen", "nonsense"},              // no port
		{"-engine", "tcp", "-nodes", "2", "-listen", "host:99999"},            // port out of range
		{"-engine", "tcp", "-nodes", "2", "-listen", "host:http"},             // non-numeric port
		{"-engine", "tcp", "-nodes", "2", "-barrier-timeout", "-5s"},          // negative timeout
		{"-engine", "tcp", "-nodes", "2", "-external"},                        // external without -listen
		{"-engine", "tcp", "-nodes", "2", "-algo", "simple"},                  // baselines are in-process
		{"-engine", "tcp", "-nodes", "2", "-trace"},                           // hooks cannot cross processes
		{"-engine", "tcp", "-nodes", "2", "-workers", "3"},                    // -workers is shard-only
		{"-engine", "tcp", "-nodes", "2", "-mutate", filepath.Join(dir, "x")}, // repair is in-process
	}
	for _, c := range cases {
		args := append([]string{"-in", gpath}, c...)
		_, stderr, err := run(t, "dimacolor", args...)
		if err == nil {
			t.Errorf("%v: accepted", c)
			continue
		}
		if code := exitCode(err); code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr: %s)", c, code, stderr)
		}
	}
}

// TestDimanodeFlagValidation: the node binary's boundary checks also
// exit 2 on hostile values, and never try to dial.
func TestDimanodeFlagValidation(t *testing.T) {
	cases := [][]string{
		{},                         // -connect required
		{"-connect", "nonsense"},   // no port
		{"-connect", "host:0"},     // port 0 is not dialable
		{"-connect", "host:99999"}, // port out of range
		{"-connect", "h:1", "-shards", "0", "-shard", "0"},          // no shards
		{"-connect", "h:1", "-shards", "4", "-shard", "-1"},         // negative shard
		{"-connect", "h:1", "-shards", "4", "-shard", "4"},          // shard out of range
		{"-connect", "h:1", "-shards", "4", "-shard", "1", "extra"}, // stray operand
	}
	for _, c := range cases {
		_, stderr, err := run(t, "dimanode", c...)
		if err == nil {
			t.Errorf("%v: accepted", c)
			continue
		}
		if code := exitCode(err); code != 2 {
			t.Errorf("%v: exit %d, want 2 (stderr: %s)", c, code, stderr)
		}
	}
}

// TestDimanodeExternalPipeline drives the operator-launched layout end
// to end: dimacolor waits with -external -listen, dimanode processes
// dial in, and the run matches the plain sync result.
func TestDimanodeExternalPipeline(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	if _, _, err := run(t, "graphgen", "-family", "er", "-n", "40", "-deg", "5", "-seed", "6", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	syncOut, _, err := run(t, "dimacolor", "-in", gpath, "-seed", "8")
	if err != nil {
		t.Fatal(err)
	}
	// A fixed loopback port: pick one the kernel says is free right now.
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	const shards = 2
	coord := exec.Command(filepath.Join(binDir, "dimacolor"),
		"-in", gpath, "-seed", "8", "-engine", "tcp", "-nodes", "2", "-external", "-listen", addr)
	var coordOut, coordErr strings.Builder
	coord.Stdout, coord.Stderr = &coordOut, &coordErr
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	var nodes []*exec.Cmd
	for s := 0; s < shards; s++ {
		nd := exec.Command(filepath.Join(binDir, "dimanode"),
			"-connect", addr, "-shard", strconv.Itoa(s), "-shards", strconv.Itoa(shards))
		nd.Stderr = os.Stderr
		nodes = append(nodes, nd)
	}
	// The coordinator needs a moment to bind; nodes retry the dial.
	for _, nd := range nodes {
		nd := nd
		go func() {
			for i := 0; i < 100; i++ {
				fresh := exec.Command(nd.Path, nd.Args[1:]...)
				fresh.Stderr = os.Stderr
				if fresh.Run() == nil {
					return
				}
				time.Sleep(50 * time.Millisecond)
			}
		}()
	}
	if err := coord.Wait(); err != nil {
		t.Fatalf("coordinator: %v\n%s", err, coordErr.String())
	}
	if resultLine(t, coordOut.String()) != resultLine(t, syncOut) {
		t.Fatalf("external tcp result diverged:\nsync: %s\ntcp: %s", syncOut, coordOut.String())
	}
}

func TestDimabenchDynamicQuick(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	stdout, stderr, err := run(t, "dimabench", "-exp", "dynamic", "-scale", "0.002", "-bench-out", out)
	if err != nil {
		t.Fatalf("dimabench -exp dynamic: %v\n%s", err, stderr)
	}
	for _, want := range []string{"== dynamic", "speedup", "deterministic=true"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("missing %q in:\n%s", want, stdout)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"deterministic": true`) {
		t.Fatalf("report: %s", data)
	}
}
