// Command dimacolor runs the paper's distributed coloring algorithms on
// a graph read from a file (or stdin) in the dima edge-list format.
//
// Usage:
//
//	graphgen -family er -n 200 -deg 8 | dimacolor -seed 7
//	dimacolor -in er.graph -strong -engine chan -json out.json
//	dimacolor -in small.graph -trace
//	dimacolor -in er.graph -mutate edits.txt -json mutated.json
//	dimacolor -in er.graph -mutate edits.txt -maintain
//
// By default it runs Algorithm 1 (edge coloring); -strong runs
// Algorithm 2 (DiMa2Ed strong distance-2 coloring) on the symmetric
// digraph of the input. The coloring is verified before reporting.
package main

import (
	"context"
	"flag"
	"fmt"
	stdnet "net"
	"os"
	"strconv"

	"dima/internal/automaton"
	"dima/internal/baseline"
	"dima/internal/core"
	"dima/internal/dynamic"
	"dima/internal/graph"
	"dima/internal/graphio"
	"dima/internal/metrics"
	"dima/internal/mpr"
	"dima/internal/net"
	"dima/internal/stats"
	"dima/internal/trace"
	"dima/internal/verify"
)

func main() {
	// A coordinator spawning node processes re-execs this binary with the
	// DIMA_NODE_* environment set; in that case the process is a cluster
	// node, not a CLI, and never reaches flag parsing.
	net.MaybeNodeMain()
	var (
		in       = flag.String("in", "", "input graph file (default stdin)")
		algo     = flag.String("algo", "dima", "algorithm: dima (paper), simple (prior-work ref 10), tree (deterministic wave, forests only)")
		strong   = flag.Bool("strong", false, "run Algorithm 2 (strong distance-2 coloring)")
		seed     = flag.Uint64("seed", 1, "random seed")
		reps     = flag.Int("reps", 1, "run this many seeds (seed, seed+1, ...) and report statistics")
		engine   = flag.String("engine", "sync", "runtime: sync (sequential), chan (goroutine per vertex), shard (worker shards), or tcp (node processes over TCP)")
		workers  = flag.Int("workers", 0, "shard engine worker count (0 = GOMAXPROCS; only with -engine shard)")
		nodes    = flag.Int("nodes", 0, "tcp engine node process count (only with -engine tcp)")
		listen   = flag.String("listen", "", "tcp engine coordinator listen address (default: a kernel-assigned loopback port; only with -engine tcp)")
		barrier  = flag.Duration("barrier-timeout", 0, "tcp engine per-round-barrier timeout (0 = 30s default; only with -engine tcp)")
		external = flag.Bool("external", false, "tcp engine: do not spawn node processes; wait for operator-launched dimanode processes on -listen")
		rule     = flag.String("rule", "lowest", "color proposal rule: lowest or random")
		jsonOut  = flag.String("json", "", "write the coloring as JSON to this file")
		showTr   = flag.Bool("trace", false, "print per-node automaton timelines (small graphs)")
		maxComp  = flag.Int("max-rounds", 0, "computation round cap (0 = default)")
		noVerify = flag.Bool("no-verify", false, "skip the validity check")
		dropP    = flag.Float64("drop", 0, "drop each message delivery with this probability (0 = reliable)")
		recover  = flag.Bool("recover", false, "enable the loss-recovery layer (docs/ROBUSTNESS.md)")
		mutate   = flag.String("mutate", "", "after the run, apply this text mutation list (+ u v / - u v) and repair the coloring incrementally (docs/DYNAMIC.md)")
		maintain = flag.Bool("maintain", false, "after -mutate, run a forced maintenance pass (edge-id compaction + palette rebalance) and report it")

		metricsOut = flag.String("metrics-out", "", "write per-round telemetry as JSON Lines to this file")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace (Perfetto-compatible) of the automaton timelines to this file")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and a /metrics endpoint on this address (e.g. localhost:6060)")
	)
	flag.Parse()

	// Flag validation happens before any work: a hostile or mistyped
	// value must exit 2 with a message, never reach a library panic.
	if *reps < 1 {
		usage(fmt.Errorf("-reps wants a positive count, got %d", *reps))
	}
	if *workers < 0 {
		usage(fmt.Errorf("-workers wants a non-negative count, got %d", *workers))
	}
	if *maxComp < 0 {
		usage(fmt.Errorf("-max-rounds wants a non-negative cap, got %d", *maxComp))
	}
	switch *algo {
	case "dima", "simple", "tree":
	default:
		usage(fmt.Errorf("unknown algorithm %q", *algo))
	}
	opt := core.Options{Seed: *seed, MaxCompRounds: *maxComp}
	switch *engine {
	case "sync":
		opt.Engine = net.RunSync
	case "chan":
		opt.Engine = net.RunChan
	case "shard":
		opt.Engine = net.RunShard
		opt.Workers = *workers
	case "tcp":
		if *nodes < 1 {
			usage(fmt.Errorf("-engine tcp wants -nodes >= 1, got %d", *nodes))
		}
		opt.Cluster = &net.TCPCluster{
			Nodes:          *nodes,
			Listen:         *listen,
			BarrierTimeout: *barrier,
			External:       *external,
		}
	default:
		usage(fmt.Errorf("unknown engine %q", *engine))
	}
	if *workers != 0 && *engine != "shard" {
		usage(fmt.Errorf("-workers requires -engine shard"))
	}
	if *engine != "tcp" {
		if *nodes != 0 {
			usage(fmt.Errorf("-nodes requires -engine tcp"))
		}
		if *listen != "" {
			usage(fmt.Errorf("-listen requires -engine tcp"))
		}
		if *barrier != 0 {
			usage(fmt.Errorf("-barrier-timeout requires -engine tcp"))
		}
		if *external {
			usage(fmt.Errorf("-external requires -engine tcp"))
		}
	} else {
		if *nodes > 1<<16 {
			usage(fmt.Errorf("-nodes wants at most %d processes, got %d", 1<<16, *nodes))
		}
		if *barrier < 0 {
			usage(fmt.Errorf("-barrier-timeout wants a non-negative duration, got %v", *barrier))
		}
		if *listen != "" {
			if err := checkListenAddr(*listen); err != nil {
				usage(err)
			}
		}
		if *external && *listen == "" {
			usage(fmt.Errorf("-external needs -listen: operator-launched nodes must know where to dial"))
		}
		if *algo != "dima" {
			usage(fmt.Errorf("-engine tcp requires -algo dima"))
		}
		if *showTr || *traceOut != "" || *pprofAddr != "" {
			usage(fmt.Errorf("-trace, -trace-out, and -pprof need in-process automaton hooks; they do not combine with -engine tcp"))
		}
		if *mutate != "" {
			usage(fmt.Errorf("-mutate repairs in-process; it does not combine with -engine tcp"))
		}
	}
	switch *rule {
	case "lowest":
		opt.ColorRule = core.LowestFirst
	case "random":
		opt.ColorRule = core.RandomAvailable
	default:
		usage(fmt.Errorf("unknown color rule %q", *rule))
	}
	if *strong && *algo != "dima" {
		usage(fmt.Errorf("-strong requires -algo dima"))
	}
	if (*dropP != 0 || *recover) && *algo != "dima" {
		usage(fmt.Errorf("-drop and -recover require -algo dima"))
	}
	if *dropP < 0 || *dropP >= 1 {
		usage(fmt.Errorf("-drop wants a probability in [0, 1), got %g", *dropP))
	}
	if *mutate != "" && (*strong || *algo != "dima" || *reps > 1) {
		usage(fmt.Errorf("-mutate requires -algo dima without -strong or -reps"))
	}
	if *maintain && *mutate == "" {
		usage(fmt.Errorf("-maintain requires -mutate: maintenance acts on the mutated coloring"))
	}

	g, err := readGraph(*in)
	if err != nil {
		fatal(err)
	}
	if *dropP > 0 {
		opt.Fault = net.DropRate{Seed: *seed, P: *dropP}
	}
	if *recover {
		opt.Recovery = automaton.Recovery{Enabled: true}
	}
	if (*metricsOut != "" || *traceOut != "" || *pprofAddr != "") && *algo != "dima" {
		usage(fmt.Errorf("-metrics-out, -trace-out, and -pprof require -algo dima"))
	}

	var rec *trace.Recorder
	if *showTr || *traceOut != "" {
		rec = trace.NewRecorder(0)
	}
	var reg *metrics.Registry
	if *pprofAddr != "" {
		reg = metrics.NewRegistry()
		ds, err := metrics.StartDebugServer(*pprofAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "dimacolor: pprof and /metrics at http://%s\n", ds.Addr())
	}
	var jsonl *metrics.JSONLWriter
	var sinks []metrics.Sink
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		jsonl = metrics.NewJSONLWriter(f)
		sinks = append(sinks, jsonl)
	}
	if reg != nil {
		sinks = append(sinks, metrics.NewRoundAggregator(reg))
	}
	opt.Metrics = metrics.Multi(sinks...)
	var hooks []automaton.Hook
	if rec != nil {
		hooks = append(hooks, rec.Hook())
	}
	if reg != nil {
		hooks = append(hooks, metrics.StateCountHook(reg))
	}
	opt.Hook = metrics.ChainHooks(hooks...)

	if *reps > 1 {
		if *jsonOut != "" || *showTr || *metricsOut != "" || *traceOut != "" {
			usage(fmt.Errorf("-reps does not combine with -json, -trace, -metrics-out, or -trace-out"))
		}
		runStats(g, opt, *algo, *strong, *reps)
		return
	}
	var res *core.Result
	var d *graph.Digraph
	kind := "edge"
	switch {
	case *strong:
		kind = "arc"
		d = graph.NewSymmetric(g)
		res, err = core.ColorStrong(d, opt)
	case *algo == "dima":
		res, err = core.ColorEdges(g, opt)
	case *algo == "simple":
		var sres *mpr.Result
		sres, err = mpr.Color(g, mpr.Options{Seed: opt.Seed, Engine: opt.Engine, MaxRounds: opt.MaxCompRounds})
		if err == nil {
			res = &core.Result{
				Colors: sres.Colors, NumColors: sres.NumColors,
				CompRounds: sres.Rounds, CommRounds: sres.CommRounds,
				Messages: sres.Messages, Terminated: sres.Terminated,
			}
			res.MaxColor = -1
			for _, c := range sres.Colors {
				if c > res.MaxColor {
					res.MaxColor = c
				}
			}
		}
	case *algo == "tree":
		var tres *baseline.TreeWaveResult
		tres, err = baseline.TreeWave(g, opt.Engine)
		if err == nil {
			distinct, maxc := verify.CountColors(tres.Colors)
			res = &core.Result{
				Colors: tres.Colors, NumColors: distinct, MaxColor: maxc,
				CompRounds: tres.Rounds, CommRounds: tres.Rounds,
				Messages: tres.Messages, Terminated: tres.Terminated,
			}
		}
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil {
		fatal(err)
	}

	if !*noVerify {
		var violations []verify.Violation
		if *strong {
			violations = verify.StrongColoring(d, res.Colors)
		} else {
			violations = verify.EdgeColoring(g, res.Colors)
		}
		for _, v := range violations {
			if v.Kind == "uncolored" && !res.Terminated {
				continue
			}
			// Without recovery, dropped deliveries legitimately corrupt the
			// coloring; report instead of failing so the damage is visible.
			if *dropP > 0 && !*recover {
				fmt.Printf("verification: %d violations (expected: -drop %g without -recover)\n",
					len(violations), *dropP)
				break
			}
			fatal(fmt.Errorf("verification failed: %v", v))
		}
	}

	delta := g.MaxDegree()
	fmt.Printf("graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), delta)
	alg := "algorithm 1 (edge coloring)"
	if *strong {
		alg = "algorithm 2 (strong distance-2 coloring)"
	} else if *algo != "dima" {
		alg = *algo + " (baseline)"
	}
	fmt.Printf("run:   %s, seed=%d, engine=%s, rule=%s\n", alg, *seed, *engine, *rule)
	fmt.Printf("result: colors=%d maxColor=%d rounds=%d commRounds=%d messages=%d terminated=%v\n",
		res.NumColors, res.MaxColor, res.CompRounds, res.CommRounds, res.Messages, res.Terminated)
	if delta > 0 {
		fmt.Printf("quality: colors-Δ=%+d rounds/Δ=%.2f\n", res.NumColors-delta,
			float64(res.CompRounds)/float64(delta))
	}
	if res.ConflictsDropped > 0 {
		fmt.Printf("confirm exchange dropped %d tentative claims\n", res.ConflictsDropped)
	}
	if *dropP > 0 || *recover {
		fmt.Printf("faults: drop=%g recovery=%v halfColored=%d retransmits=%d repairs=%d reverts=%d probes=%d\n",
			*dropP, *recover, res.HalfColored, res.Retransmits, res.Repairs, res.Reverts, res.Probes)
	}

	// -mutate: stream the text mutation list through the dynamic
	// recolorer and repair incrementally instead of recoloring. The run's
	// own graph and coloring stay intact; the mutated state takes over
	// the -json output (compacted, so the file has no removal holes).
	var mrec *dynamic.Recolorer
	if *mutate != "" {
		if !res.Terminated {
			fatal(fmt.Errorf("-mutate needs a complete coloring; run truncated at %d rounds", res.CompRounds))
		}
		mf, err := os.Open(*mutate)
		if err != nil {
			fatal(err)
		}
		b, err := graphio.ReadMutations(mf)
		mf.Close()
		if err != nil {
			fatal(err)
		}
		mrec, err = dynamic.New(g.Clone(), append([]int(nil), res.Colors...), dynamic.Options{
			Seed:   *seed,
			Repair: core.Options{Engine: opt.Engine, Workers: opt.Workers},
		})
		if err != nil {
			fatal(err)
		}
		mrep, err := mrec.Apply(b)
		if err != nil {
			fatal(err)
		}
		if !*noVerify {
			if v := verify.EdgeColoring(mrec.Graph(), mrec.Colors()); len(v) != 0 {
				fatal(fmt.Errorf("mutated coloring failed verification: %v", v[0]))
			}
		}
		fmt.Printf("mutate: %s: +%d -%d, greedy=%d repaired=%d repairRounds=%d region=%dv/%de\n",
			*mutate, mrep.Inserted, mrep.Deleted, mrep.GreedyColored,
			mrep.RepairedEdges, mrep.RepairRounds, mrep.RegionSize, mrep.RegionEdges)
		fmt.Printf("mutated: m=%d colors=%d maxColor=%d\n",
			mrec.Graph().M(), mrec.NumColors(), mrec.MaxColor())

		// -maintain: a forced pass, so a one-shot CLI run always shows the
		// compaction and rebalance outcome instead of depending on whether
		// this particular edit list tripped an automatic trigger.
		if *maintain {
			pre := mrec.Graph().EdgeIDBound()
			srep, err := mrec.Maintain(context.Background(),
				dynamic.MaintainOptions{Force: true})
			if err != nil {
				fatal(err)
			}
			if !*noVerify {
				if v := verify.EdgeColoring(mrec.Graph(), mrec.Colors()); len(v) != 0 {
					fatal(fmt.Errorf("maintained coloring failed verification: %v", v[0]))
				}
			}
			fmt.Printf("maintain: compacted=%v holes=%d (idBound %d -> %d) rebalanced=%v evicted=%d (greedy=%d repair=%d fallback=%d)\n",
				srep.Compacted, srep.HolesReclaimed, pre, srep.EdgeIDBound,
				srep.Rebalanced, srep.Evicted, srep.GreedyMoved, srep.RepairMoved, srep.FallbackMoved)
			fmt.Printf("maintained: m=%d colors=%d maxColor=%d target=%d (2Δ−1, Δ=%d)\n",
				mrec.Graph().M(), mrec.NumColors(), mrec.MaxColor(), srep.Target, srep.Delta)
		}
	}

	if *showTr {
		fmt.Println("\nautomaton timelines:")
		fmt.Print(rec.Timeline())
		if err := rec.Validate(); err != nil {
			fatal(err)
		}
	}

	if jsonl != nil {
		if err := jsonl.Flush(); err != nil {
			fatal(err)
		}
		fmt.Printf("telemetry: %d rounds -> %s\n", jsonl.Rounds(), *metricsOut)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.ChromeTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("trace: %d events -> %s (load at ui.perfetto.dev)\n", rec.Len(), *traceOut)
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		outG, outColors, numColors := g, res.Colors, res.NumColors
		if mrec != nil {
			cg, cc := mrec.Compacted()
			outG, outColors, numColors = cg, cc, mrec.NumColors()
		}
		c := &graphio.Coloring{
			Kind: kind, N: outG.N(), M: outG.M(), Colors: outColors,
			Meta: map[string]string{
				"seed":   strconv.FormatUint(*seed, 10),
				"rounds": strconv.Itoa(res.CompRounds),
				"colors": strconv.Itoa(numColors),
			},
		}
		if err := graphio.WriteColoring(f, c); err != nil {
			fatal(err)
		}
	}
}

// runStats executes the selected algorithm across consecutive seeds and
// prints round/color statistics — the quick way to see a graph's typical
// behavior rather than a single sample.
func runStats(g *graph.Graph, opt core.Options, algo string, strong bool, reps int) {
	var rounds, colors, msgs stats.Online
	var d *graph.Digraph
	if strong {
		d = graph.NewSymmetric(g)
	}
	for i := 0; i < reps; i++ {
		o := opt
		o.Seed = opt.Seed + uint64(i)
		var compRounds, numColors int
		var messages int64
		switch {
		case strong:
			res, err := core.ColorStrong(d, o)
			if err != nil {
				fatal(err)
			}
			if !res.Terminated {
				fatal(fmt.Errorf("seed %d did not terminate", o.Seed))
			}
			if v := verify.StrongColoring(d, res.Colors); len(v) != 0 {
				fatal(fmt.Errorf("seed %d: %v", o.Seed, v[0]))
			}
			compRounds, numColors, messages = res.CompRounds, res.NumColors, res.Messages
		case algo == "dima":
			res, err := core.ColorEdges(g, o)
			if err != nil {
				fatal(err)
			}
			if !res.Terminated {
				fatal(fmt.Errorf("seed %d did not terminate", o.Seed))
			}
			if v := verify.EdgeColoring(g, res.Colors); len(v) != 0 {
				fatal(fmt.Errorf("seed %d: %v", o.Seed, v[0]))
			}
			compRounds, numColors, messages = res.CompRounds, res.NumColors, res.Messages
		case algo == "simple":
			res, err := mpr.Color(g, mpr.Options{Seed: o.Seed, Engine: o.Engine, MaxRounds: o.MaxCompRounds})
			if err != nil {
				fatal(err)
			}
			if v := verify.EdgeColoring(g, res.Colors); len(v) != 0 {
				fatal(fmt.Errorf("seed %d: %v", o.Seed, v[0]))
			}
			compRounds, numColors, messages = res.Rounds, res.NumColors, res.Messages
		default:
			fatal(fmt.Errorf("-reps supports dima and simple algorithms"))
		}
		rounds.Add(float64(compRounds))
		colors.Add(float64(numColors))
		msgs.Add(float64(messages))
	}
	delta := g.MaxDegree()
	fmt.Printf("graph: n=%d m=%d Δ=%d\n", g.N(), g.M(), delta)
	fmt.Printf("%d runs (seeds %d..%d), all verified:\n", reps, opt.Seed, opt.Seed+uint64(reps)-1)
	fmt.Printf("rounds: mean %.1f  sd %.1f  min %.0f  max %.0f", rounds.Mean(), rounds.Std(), rounds.Min(), rounds.Max())
	if delta > 0 {
		fmt.Printf("  (%.2fΔ)", rounds.Mean()/float64(delta))
	}
	fmt.Println()
	fmt.Printf("colors: mean %.1f  sd %.1f  min %.0f  max %.0f", colors.Mean(), colors.Std(), colors.Min(), colors.Max())
	if delta > 0 {
		fmt.Printf("  (Δ%+.1f)", colors.Mean()-float64(delta))
	}
	fmt.Println()
	fmt.Printf("messages: mean %.0f\n", msgs.Mean())
}

// checkListenAddr rejects a malformed -listen value before any socket
// work: it must be host:port with a numeric port in [0, 65535] (port 0
// asks the kernel for a free one).
func checkListenAddr(addr string) error {
	host, port, err := stdnet.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-listen wants host:port, got %q: %v", addr, err)
	}
	p, err := strconv.Atoi(port)
	if err != nil || p < 0 || p > 65535 {
		return fmt.Errorf("-listen wants a numeric port in [0, 65535], got %q", port)
	}
	_ = host // an empty host means all interfaces; any name is resolved at bind time
	return nil
}

func readGraph(path string) (*graph.Graph, error) {
	if path == "" {
		return graphio.ReadGraph(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graphio.ReadGraph(f)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dimacolor: %v\n", err)
	os.Exit(1)
}

// usage reports a bad flag combination or value and exits 2, the
// conventional status for a usage error (runtime failures exit 1).
func usage(err error) {
	fmt.Fprintf(os.Stderr, "dimacolor: %v\n", err)
	os.Exit(2)
}
