// Command dimanode is a cluster node process for the tcp engine
// (docs/CLUSTER.md): it owns one contiguous vertex shard of a coloring
// run coordinated by a dimacolor (or dimabench) process started with
// -engine tcp -external.
//
// Usage:
//
//	dimacolor -in big.graph -engine tcp -nodes 4 -external -listen :7600 &
//	for s in 0 1 2 3; do dimanode -connect host:7600 -shard $s -shards 4 & done
//
// The node dials the coordinator, handshakes (shard index, shard count,
// launch token), receives its graph shard and node factory, then serves
// round frames until the coordinator sends shutdown. It holds no state
// across runs: one process, one run, one shard.
//
// The coordinator's spawn mode (without -external) does not use this
// binary — it re-execs itself with the DIMA_NODE_* environment set —
// but dimanode honors that environment too, so it can serve as the
// spawn target via TCPCluster.Command.
package main

import (
	"flag"
	"fmt"
	stdnet "net"
	"os"
	"strconv"

	_ "dima/internal/core" // registers the dima/edge/v1 and dima/strong/v1 node factories
	"dima/internal/net"
)

func main() {
	net.MaybeNodeMain()
	var (
		connect = flag.String("connect", "", "coordinator address (host:port); required")
		shard   = flag.Int("shard", -1, "shard index this node owns, in [0, shards)")
		shards  = flag.Int("shards", 0, "total shard count of the run")
		token   = flag.Uint64("token", 0, "launch token (0 for -external coordinators)")
	)
	flag.Parse()

	if flag.NArg() != 0 {
		usage(fmt.Errorf("unexpected arguments %q", flag.Args()))
	}
	if *connect == "" {
		usage(fmt.Errorf("-connect is required"))
	}
	if _, port, err := stdnet.SplitHostPort(*connect); err != nil {
		usage(fmt.Errorf("-connect wants host:port, got %q: %v", *connect, err))
	} else if p, err := strconv.Atoi(port); err != nil || p < 1 || p > 65535 {
		usage(fmt.Errorf("-connect wants a numeric port in [1, 65535], got %q", port))
	}
	if *shards < 1 {
		usage(fmt.Errorf("-shards wants a positive count, got %d", *shards))
	}
	if *shard < 0 || *shard >= *shards {
		usage(fmt.Errorf("-shard wants an index in [0, %d), got %d", *shards, *shard))
	}

	if err := net.NodeMain(*connect, *shard, *shards, *token); err != nil {
		fmt.Fprintf(os.Stderr, "dimanode: %v\n", err)
		os.Exit(1)
	}
}

// usage reports a bad flag value and exits 2, the conventional status
// for a usage error (runtime failures exit 1).
func usage(err error) {
	fmt.Fprintf(os.Stderr, "dimanode: %v\n", err)
	flag.Usage()
	os.Exit(2)
}
