// Command graphgen generates graphs from the families used in the
// paper's evaluation and writes them in the dima edge-list format.
//
// Usage:
//
//	graphgen -family er -n 200 -deg 8 -seed 1 > er.graph
//	graphgen -family ws -n 256 -k 23 -beta 0.1 -o dense.graph
//	graphgen -family ba -n 400 -k 2 -power 1.5
//
// Families: er (Erdős–Rényi by average degree), gnp, gnm, ba
// (scale-free), ws (small-world), regular, geometric, powerlaw
// (configuration model over a power-law degree sequence), tree,
// bipartite, complete, cycle, path, star, grid, hypercube.
package main

import (
	"flag"
	"fmt"
	"os"

	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/graphio"
	"dima/internal/rng"
)

func main() {
	var (
		family = flag.String("family", "er", "graph family")
		n      = flag.Int("n", 100, "number of vertices")
		deg    = flag.Float64("deg", 8, "average degree (er)")
		p      = flag.Float64("p", 0.1, "edge probability (gnp, bipartite)")
		m      = flag.Int("m", 100, "edge count (gnm)")
		k      = flag.Int("k", 2, "attachment edges (ba) / lattice half-degree (ws) / regular degree")
		power  = flag.Float64("power", 1.0, "attachment weighting exponent (ba)")
		beta   = flag.Float64("beta", 0.1, "rewire probability (ws)")
		rows   = flag.Int("rows", 10, "grid rows")
		cols   = flag.Int("cols", 10, "grid cols")
		dim    = flag.Int("dim", 6, "hypercube dimension")
		radius = flag.Float64("radius", 0.15, "connection radius (geometric)")
		left   = flag.Int("left", 50, "left part size (bipartite)")
		right  = flag.Int("right", 50, "right part size (bipartite)")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	// The constructive families (gen.Complete, gen.Grid, gen.Hypercube,
	// ...) document panics on out-of-range sizes; the CLI boundary must
	// catch hostile flag values first and exit 2 with a message.
	if *n < 0 {
		usage(fmt.Errorf("-n wants a non-negative vertex count, got %d", *n))
	}
	if *m < 0 {
		usage(fmt.Errorf("-m wants a non-negative edge count, got %d", *m))
	}
	if *k < 0 {
		usage(fmt.Errorf("-k wants a non-negative degree, got %d", *k))
	}
	if *rows < 0 || *cols < 0 {
		usage(fmt.Errorf("-rows and -cols want non-negative sizes, got %d x %d", *rows, *cols))
	}
	if *dim < 0 || *dim > 30 {
		usage(fmt.Errorf("-dim wants a hypercube dimension in [0, 30], got %d", *dim))
	}
	if *left < 0 || *right < 0 {
		usage(fmt.Errorf("-left and -right want non-negative part sizes, got %d and %d", *left, *right))
	}

	r := rng.New(*seed)
	var g *graph.Graph
	var err error
	switch *family {
	case "er":
		g, err = gen.ErdosRenyiAvgDegree(r, *n, *deg)
	case "gnp":
		g, err = gen.ErdosRenyiGNP(r, *n, *p)
	case "gnm":
		g, err = gen.ErdosRenyiGNM(r, *n, *m)
	case "ba":
		g, err = gen.BarabasiAlbert(r, *n, *k, *power)
	case "ws":
		g, err = gen.WattsStrogatz(r, *n, *k, *beta)
	case "regular":
		g, err = gen.RandomRegular(r, *n, *k)
	case "geometric":
		g, err = gen.RandomGeometric(r, *n, *radius)
	case "powerlaw":
		maxDeg := *k * 8
		if maxDeg >= *n {
			maxDeg = *n - 1
		}
		if maxDeg < 1 {
			maxDeg = 1
		}
		var degrees []int
		degrees, err = gen.PowerLawDegrees(r, *n, 1, maxDeg, *power+1.5)
		if err == nil {
			g, err = gen.ConfigurationModel(r, degrees)
		}
	case "tree":
		g = gen.RandomTree(r, *n)
	case "bipartite":
		g, err = gen.RandomBipartite(r, *left, *right, *p)
	case "complete":
		g = gen.Complete(*n)
	case "cycle":
		g = gen.Cycle(*n)
	case "path":
		g = gen.Path(*n)
	case "star":
		g = gen.Star(*n)
	case "grid":
		g = gen.Grid(*rows, *cols)
	case "hypercube":
		g = gen.Hypercube(*dim)
	default:
		usage(fmt.Errorf("unknown family %q", *family))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := graphio.WriteGraph(w, g); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "graphgen: %s n=%d m=%d Δ=%d\n", *family, g.N(), g.M(), g.MaxDegree())
}

// usage reports a bad flag value and exits 2, the conventional status
// for a usage error (runtime failures exit 1).
func usage(err error) {
	fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
	os.Exit(2)
}
