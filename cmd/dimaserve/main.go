// Command dimaserve runs the HTTP coloring service: clients submit a
// graph (an uploaded edge list or a generator spec), jobs queue for a
// worker pool running the shard engine, and runs can be watched,
// fetched, and canceled over HTTP. docs/SERVING.md documents the API;
// examples/serving has a curl walkthrough.
//
// Usage:
//
//	dimaserve -addr :8080 -workers 2 -queue 16
//	dimaserve -addr 127.0.0.1:0 -timeout 30s   # free port, 30s job cap
//
// The service exposes /metrics and /debug/pprof/ on its own address;
// -pprof additionally serves them on a separate port. SIGINT/SIGTERM
// trigger a graceful shutdown: submissions stop, queued and running
// jobs drain, and any still running at -drain-timeout are canceled at
// their next round barrier.
package main

import (
	"context"
	"flag"
	"fmt"
	stdnet "net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dima/internal/metrics"
	"dima/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free one)")
		queue     = flag.Int("queue", 16, "job queue capacity; a submit beyond it gets 429")
		workers   = flag.Int("workers", 2, "jobs colored concurrently")
		shardW    = flag.Int("shard-workers", 0, "shard engine workers per job (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "per-job wall-clock cap (0 = none)")
		maxRounds = flag.Int("max-rounds", 0, "computation round cap per job (0 = core default)")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget before in-flight jobs are canceled")
		pprofAddr = flag.String("pprof", "", "also serve /metrics and /debug/pprof/ on this separate address")
	)
	flag.Parse()

	if *queue < 1 {
		usage(fmt.Errorf("-queue wants a positive capacity, got %d", *queue))
	}
	if *workers < 1 {
		usage(fmt.Errorf("-workers wants a positive count, got %d", *workers))
	}
	if *shardW < 0 {
		usage(fmt.Errorf("-shard-workers wants a non-negative count, got %d", *shardW))
	}
	if *timeout < 0 {
		usage(fmt.Errorf("-timeout wants a non-negative duration, got %v", *timeout))
	}
	if *maxRounds < 0 {
		usage(fmt.Errorf("-max-rounds wants a non-negative cap, got %d", *maxRounds))
	}
	if *drain <= 0 {
		usage(fmt.Errorf("-drain-timeout wants a positive duration, got %v", *drain))
	}

	reg := metrics.NewRegistry()
	svc := service.New(service.Config{
		QueueSize:    *queue,
		Workers:      *workers,
		ShardWorkers: *shardW,
		JobTimeout:   *timeout,
		MaxRounds:    *maxRounds,
		Registry:     reg,
	})

	if *pprofAddr != "" {
		ds, err := metrics.StartDebugServer(*pprofAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "dimaserve: pprof and /metrics at http://%s\n", ds.Addr())
	}

	ln, err := stdnet.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: svc}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "dimaserve: listening on http://%s (queue %d, %d workers)\n",
		ln.Addr(), *queue, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "dimaserve: %v: draining (budget %v)\n", s, *drain)
	case err := <-errCh:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dimaserve: http shutdown: %v\n", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dimaserve: canceled in-flight jobs: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "dimaserve: drained")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dimaserve: %v\n", err)
	os.Exit(1)
}

// usage reports a bad flag value and exits 2, the conventional status
// for a usage error (runtime failures exit 1).
func usage(err error) {
	fmt.Fprintf(os.Stderr, "dimaserve: %v\n", err)
	os.Exit(2)
}
