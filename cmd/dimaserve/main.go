// Command dimaserve runs the HTTP coloring service: clients submit a
// graph (an uploaded edge list or a generator spec), jobs queue for a
// worker pool running the shard engine, and runs can be watched,
// fetched, and canceled over HTTP. docs/SERVING.md documents the API;
// examples/serving has a curl walkthrough.
//
// Usage:
//
//	dimaserve -addr :8080 -workers 2 -queue 16
//	dimaserve -addr 127.0.0.1:0 -timeout 30s   # free port, 30s job cap
//
// The service exposes /metrics and /debug/pprof/ on its own address;
// -pprof additionally serves them on a separate port. SIGINT/SIGTERM
// trigger a graceful shutdown: submissions stop, queued and running
// jobs drain, and any still running at -drain-timeout are canceled at
// their next round barrier; the shutdown log reports how many jobs the
// deadline abandoned.
//
// With -cluster-listen the service becomes a cluster front end
// (docs/CLUSTER_SERVE.md): jobs execute on dimaworker processes that
// dial the cluster address with the launch token instead of in-process
// goroutines:
//
//	dimaserve -addr :8080 -cluster-listen :7700 -cluster-token 12345
//	dimaworker -connect host:7700 -token 12345 &   # × N
package main

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	stdnet "net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dima/internal/cluster"
	"dima/internal/metrics"
	"dima/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free one)")
		queue     = flag.Int("queue", 16, "job queue capacity; a submit beyond it gets 429")
		workers   = flag.Int("workers", 2, "jobs colored concurrently")
		shardW    = flag.Int("shard-workers", 0, "shard engine workers per job (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "per-job wall-clock cap (0 = none)")
		maxRounds = flag.Int("max-rounds", 0, "computation round cap per job (0 = core default)")
		drain     = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget before in-flight jobs are canceled")
		pprofAddr = flag.String("pprof", "", "also serve /metrics and /debug/pprof/ on this separate address")

		clusterListen = flag.String("cluster-listen", "", "cluster mode: accept dimaworker registrations on this address and run jobs remotely")
		clusterToken  = flag.Uint64("cluster-token", 0, "worker launch token (0 = generate one and log it)")
		heartbeat     = flag.Duration("cluster-heartbeat", time.Second, "worker heartbeat interval; eviction after 3 missed beats")
	)
	flag.Parse()

	if *queue < 1 {
		usage(fmt.Errorf("-queue wants a positive capacity, got %d", *queue))
	}
	if *workers < 1 {
		usage(fmt.Errorf("-workers wants a positive count, got %d", *workers))
	}
	if *shardW < 0 {
		usage(fmt.Errorf("-shard-workers wants a non-negative count, got %d", *shardW))
	}
	if *timeout < 0 {
		usage(fmt.Errorf("-timeout wants a non-negative duration, got %v", *timeout))
	}
	if *maxRounds < 0 {
		usage(fmt.Errorf("-max-rounds wants a non-negative cap, got %d", *maxRounds))
	}
	if *drain <= 0 {
		usage(fmt.Errorf("-drain-timeout wants a positive duration, got %v", *drain))
	}
	if *clusterListen == "" && *clusterToken != 0 {
		usage(fmt.Errorf("-cluster-token needs -cluster-listen"))
	}
	if *heartbeat <= 0 {
		usage(fmt.Errorf("-cluster-heartbeat wants a positive duration, got %v", *heartbeat))
	}

	reg := metrics.NewRegistry()
	cfg := service.Config{
		QueueSize:    *queue,
		Workers:      *workers,
		ShardWorkers: *shardW,
		JobTimeout:   *timeout,
		MaxRounds:    *maxRounds,
		Registry:     reg,
	}

	var fe *cluster.FrontEnd
	if *clusterListen != "" {
		token := *clusterToken
		if token == 0 {
			var b [8]byte
			if _, err := rand.Read(b[:]); err != nil {
				fatal(fmt.Errorf("generate cluster token: %v", err))
			}
			token = binary.BigEndian.Uint64(b[:])
		}
		var err error
		fe, err = cluster.Listen(cluster.Config{
			Listen:            *clusterListen,
			Token:             token,
			HeartbeatInterval: *heartbeat,
			Registry:          reg,
			Logf:              log.New(os.Stderr, "dimaserve: ", 0).Printf,
		})
		if err != nil {
			fatal(err)
		}
		defer fe.Close()
		cfg.Runner = fe.Runner()
		cfg.Cluster = fe
		fmt.Fprintf(os.Stderr, "dimaserve: cluster front end on %s (token %d)\n", fe.Addr(), token)
	}

	svc := service.New(cfg)

	if *pprofAddr != "" {
		ds, err := metrics.StartDebugServer(*pprofAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "dimaserve: pprof and /metrics at http://%s\n", ds.Addr())
	}

	ln, err := stdnet.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: svc}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "dimaserve: listening on http://%s (queue %d, %d workers)\n",
		ln.Addr(), *queue, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "dimaserve: %v: draining (budget %v)\n", s, *drain)
	case err := <-errCh:
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dimaserve: http shutdown: %v\n", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "dimaserve: canceled in-flight jobs: %v (%d abandoned at the drain deadline)\n",
			err, svc.Abandoned())
	}
	if fe != nil {
		if err := fe.Drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "dimaserve: cluster drain: %v\n", err)
		}
		fe.Close()
	}
	fmt.Fprintf(os.Stderr, "dimaserve: drained (%d jobs abandoned)\n", svc.Abandoned())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dimaserve: %v\n", err)
	os.Exit(1)
}

// usage reports a bad flag value and exits 2, the conventional status
// for a usage error (runtime failures exit 1).
func usage(err error) {
	fmt.Fprintf(os.Stderr, "dimaserve: %v\n", err)
	os.Exit(2)
}
