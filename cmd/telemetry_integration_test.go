package cmd_test

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// readJSONL parses a JSON Lines file into generic records, failing on
// any malformed line.
func readJSONL(t *testing.T, path string) []map[string]any {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []map[string]any
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d of %s is not valid JSON: %v", len(out)+1, path, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// checkChromeTrace validates that path holds a Chrome trace-event JSON
// array of complete events, and returns the span count.
func checkChromeTrace(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("%s is not a JSON array: %v", path, err)
	}
	if len(events) == 0 {
		t.Fatalf("%s holds no events", path)
	}
	for i, e := range events {
		if e["ph"] != "X" {
			t.Fatalf("%s event %d has ph %v, want X", path, i, e["ph"])
		}
		for _, key := range []string{"name", "pid", "tid", "ts", "dur"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("%s event %d missing %q", path, i, key)
			}
		}
	}
	return len(events)
}

func TestDimacolorTelemetryOutputs(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	jsonl := filepath.Join(dir, "run.jsonl")
	tracePath := filepath.Join(dir, "trace.json")
	if _, _, err := run(t, "graphgen", "-family", "er", "-n", "50", "-deg", "6", "-seed", "9", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, err := run(t, "dimacolor", "-in", gpath, "-seed", "11",
		"-metrics-out", jsonl, "-trace-out", tracePath)
	if err != nil {
		t.Fatalf("dimacolor: %v\n%s", err, stderr)
	}
	if !strings.Contains(stdout, "telemetry:") || !strings.Contains(stdout, "trace:") {
		t.Fatalf("no telemetry summary:\n%s", stdout)
	}

	rounds := readJSONL(t, jsonl)
	if len(rounds) == 0 {
		t.Fatal("metrics JSONL is empty")
	}
	var messages float64
	for i, r := range rounds {
		if int(r["round"].(float64)) != i {
			t.Fatalf("round %d labeled %v", i, r["round"])
		}
		messages += r["messages"].(float64)
	}
	// The stream's message total must match the run report.
	if !strings.Contains(stdout, "messages="+strconv.FormatInt(int64(messages), 10)) {
		t.Fatalf("JSONL messages %v not found in run output:\n%s", messages, stdout)
	}

	checkChromeTrace(t, tracePath)
}

func TestDimacolorTelemetryStrong(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	jsonl := filepath.Join(dir, "run.jsonl")
	if _, _, err := run(t, "graphgen", "-family", "cycle", "-n", "12", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	if _, stderr, err := run(t, "dimacolor", "-in", gpath, "-strong", "-metrics-out", jsonl); err != nil {
		t.Fatalf("dimacolor -strong: %v\n%s", err, stderr)
	}
	rounds := readJSONL(t, jsonl)
	last := rounds[len(rounds)-1]
	// C12 symmetric digraph: all 24 arcs colored by the end.
	if last["colored_total"].(float64) != 24 {
		t.Fatalf("final colored_total %v, want 24", last["colored_total"])
	}
}

func TestDimacolorTelemetryFlagValidation(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	if _, _, err := run(t, "graphgen", "-family", "path", "-n", "4", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	// Telemetry flags only compose with the paper's algorithm.
	if _, _, err := run(t, "dimacolor", "-in", gpath, "-algo", "simple", "-metrics-out", filepath.Join(dir, "x.jsonl")); err == nil {
		t.Fatal("-metrics-out with -algo simple accepted")
	}
	// And not with -reps.
	if _, _, err := run(t, "dimacolor", "-in", gpath, "-reps", "3", "-metrics-out", filepath.Join(dir, "x.jsonl")); err == nil {
		t.Fatal("-metrics-out with -reps accepted")
	}
}

func TestDimacolorPprofEndpoint(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "g.graph")
	if _, _, err := run(t, "graphgen", "-family", "er", "-n", "40", "-deg", "5", "-seed", "6", "-o", gpath); err != nil {
		t.Fatal(err)
	}
	// The process exits when the run completes, so the live endpoint is
	// exercised in the metrics package tests; here check that the flag
	// binds an ephemeral port and reports where it is listening.
	_, stderr, err := run(t, "dimacolor", "-in", gpath, "-pprof", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("dimacolor -pprof: %v\n%s", err, stderr)
	}
	if !strings.Contains(stderr, "pprof and /metrics at http://127.0.0.1:") {
		t.Fatalf("no pprof banner on stderr:\n%s", stderr)
	}
}

func TestDimabenchTelemetryExperiment(t *testing.T) {
	dir := t.TempDir()
	stdout, stderr, err := run(t, "dimabench", "-exp", "telemetry", "-seed", "3",
		"-metrics-out", filepath.Join(dir, "run.jsonl"), "-trace-out", filepath.Join(dir, "trace.json"))
	if err != nil {
		t.Fatalf("dimabench telemetry: %v\n%s", err, stderr)
	}
	for _, want := range []string{"== telemetry", "algorithm 1", "algorithm 2", "round", "cum%"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("missing %q in:\n%s", want, stdout)
		}
	}
	for _, prefix := range []string{"alg1", "alg2"} {
		rounds := readJSONL(t, filepath.Join(dir, prefix+"-run.jsonl"))
		if len(rounds) == 0 {
			t.Fatalf("%s metrics empty", prefix)
		}
		last := rounds[len(rounds)-1]
		if last["colored_total"].(float64) <= 0 {
			t.Fatalf("%s never colored anything: %v", prefix, last)
		}
		checkChromeTrace(t, filepath.Join(dir, prefix+"-trace.json"))
	}
}
