// Command dimaworker is a coloring worker for the dimaserve cluster
// (docs/CLUSTER_SERVE.md): it dials a front end started with
// -cluster-listen, registers with the launch token, and executes
// dispatched coloring jobs with the shard engine, streaming results and
// round stats back over the registry connection.
//
// Usage:
//
//	dimaserve -addr :8080 -cluster-listen :7700 -cluster-token 12345
//	dimaworker -connect host:7700 -token 12345 -capacity 2 &   # × N
//
// The worker holds no durable state: every job arrives with its full
// description (graph, algorithm, seed, options) and is reproducible on
// any other worker, which is what makes front-end failover retries
// safe. A front end that drains and closes the connection ends the
// worker cleanly (exit 0); losing the connection mid-job exits 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	stdnet "net"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"dima/internal/cluster"
)

func main() {
	var (
		connect  = flag.String("connect", "", "front end's cluster address (host:port); required")
		token    = flag.Uint64("token", 0, "launch token printed by the front end; required")
		name     = flag.String("name", "", "operator label reported in the registry")
		capacity = flag.Int("capacity", 1, "jobs run concurrently; more queue on the worker")
		shardW   = flag.Int("shard-workers", 0, "shard engine workers per job (0 = GOMAXPROCS)")
		quiet    = flag.Bool("q", false, "suppress per-job log lines")
	)
	flag.Parse()

	if flag.NArg() != 0 {
		usage(fmt.Errorf("unexpected arguments %q", flag.Args()))
	}
	if *connect == "" {
		usage(fmt.Errorf("-connect is required"))
	}
	if _, port, err := stdnet.SplitHostPort(*connect); err != nil {
		usage(fmt.Errorf("-connect wants host:port, got %q: %v", *connect, err))
	} else if p, err := strconv.Atoi(port); err != nil || p < 1 || p > 65535 {
		usage(fmt.Errorf("-connect wants a numeric port in [1, 65535], got %q", port))
	}
	if *token == 0 {
		usage(fmt.Errorf("-token is required (the front end logs it at startup)"))
	}
	if *capacity < 1 {
		usage(fmt.Errorf("-capacity wants a positive count, got %d", *capacity))
	}
	if *shardW < 0 {
		usage(fmt.Errorf("-shard-workers wants a non-negative count, got %d", *shardW))
	}

	logf := log.New(os.Stderr, "dimaworker: ", 0).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	// SIGINT/SIGTERM cancel the worker context: running jobs abort at
	// their next round barrier, the connection closes, and the front end
	// retries anything that was in flight elsewhere.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	err := cluster.RunWorker(ctx, cluster.WorkerConfig{
		Connect:      *connect,
		Token:        *token,
		Name:         *name,
		Capacity:     *capacity,
		ShardWorkers: *shardW,
		Logf:         logf,
	})
	if err != nil && ctx.Err() == nil {
		fmt.Fprintf(os.Stderr, "dimaworker: %v\n", err)
		os.Exit(1)
	}
}

// usage reports a bad flag value and exits 2, the conventional status
// for a usage error (runtime failures exit 1).
func usage(err error) {
	fmt.Fprintf(os.Stderr, "dimaworker: %v\n", err)
	flag.Usage()
	os.Exit(2)
}
