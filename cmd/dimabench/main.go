// Command dimabench regenerates the paper's evaluation (§IV): each
// experiment reruns a figure's full grid of random graphs and prints the
// rounds-versus-Δ series and color-quality census the figure reports,
// together with the linear fit and the shape checks from DESIGN.md.
//
// Usage:
//
//	dimabench -exp fig3                # full §IV-A protocol (50 graphs/cell)
//	dimabench -exp all -scale 0.2      # quick pass over every figure
//	dimabench -exp fig6 -csv fig6.csv  # machine-readable series
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dima/internal/core"
	"dima/internal/experiment"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/metrics"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/stats"
	"dima/internal/trace"
	"dima/internal/viz"
)

type figure struct {
	name  string
	specs func(scale float64) []experiment.Spec
	shape experiment.Shape
	notes string
}

func figures() []figure {
	return []figure{
		{
			name:  "fig3",
			specs: experiment.Fig3Specs,
			// §IV-A: never beyond Δ+2; rounds linear in Δ.
			shape: experiment.Shape{MaxColorsExcess: 2, MinR2: 0.7},
			notes: "Algorithm 1 on Erdős–Rényi graphs (paper: Δ or Δ+1 colors, Δ+2 in 2/300 runs; rounds ≈ 2Δ, independent of n)",
		},
		{
			name:  "fig4",
			specs: experiment.Fig4Specs,
			// §IV-B: the paper saw at most Δ colors on scale-free graphs.
			// Our weakly-skewed cells (power 0.5) occasionally reach Δ+2;
			// the census shows the split, the hard bound stays 2Δ-1.
			shape: experiment.Shape{MaxColorsExcess: 2, MinR2: 0.7},
			notes: "Algorithm 1 on scale-free graphs (paper: never more than Δ colors; rounds grow linearly with Δ)",
		},
		{
			name:  "fig5",
			specs: experiment.Fig5Specs,
			// §IV-C: dense cells exceed Δ+1 (paper saw up to Δ+5); the
			// hard bound stays 2Δ-1, checked implicitly.
			shape: experiment.Shape{MaxColorsExcess: 6, MinR2: 0.7},
			notes: "Algorithm 1 on small-world graphs (paper: up to Δ+5 on dense 256-vertex cells, never 2Δ-1; rounds linear in Δ)",
		},
		{
			name:  "fig6",
			specs: experiment.Fig6Specs,
			shape: experiment.Shape{MaxColorsExcess: -1, MinR2: 0.7},
			notes: "Algorithm 2 on symmetric directed Erdős–Rényi graphs (paper: rounds ≈ 4Δ, independent of n)",
		},
	}
}

func main() {
	// A cluster-experiment coordinator spawning node processes re-execs
	// this binary with the DIMA_NODE_* environment set; such a process is
	// a cluster node, not a CLI, and never reaches flag parsing.
	net.MaybeNodeMain()
	var (
		exp      = flag.String("exp", "all", "experiment: fig3, fig4, fig5, fig6, compare, converge, pairprob, fits, telemetry, faults, scale, parallel, cluster, dynamic, soak, or all")
		scale    = flag.Float64("scale", 1.0, "fraction of the paper's 50 repetitions per cell (for -exp scale: graph-size multiplier)")
		seed     = flag.Uint64("seed", 2012, "master seed")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS); for -exp scale: shard engine worker count")
		engSel   = flag.String("engine", "", "scale experiment: comma-separated engines to benchmark (default sync,chan,shard)")
		wkrsSet  = flag.String("workers-set", "", "parallel experiment: comma-separated shard worker counts to sweep (0 = GOMAXPROCS; default 1,2,4,8,0)")
		nodesSet = flag.String("nodes-set", "", "cluster experiment: comma-separated node-process counts to sweep (default 1,2,4)")
		benchOut = flag.String("bench-out", "", "scale experiment: write the report as JSON to this file (e.g. BENCH_PR3.json)")
		csvPath  = flag.String("csv", "", "also write the rounds series as CSV")
		savePth  = flag.String("save", "", "persist raw runs as JSON (per figure: <fig>-<name>)")
		plot     = flag.Bool("plot", true, "render ASCII rounds-vs-Δ scatter plots")

		metricsOut = flag.String("metrics-out", "", "telemetry experiment: write per-round JSONL (files prefixed alg1-/alg2-)")
		traceOut   = flag.String("trace-out", "", "telemetry experiment: write Chrome traces (files prefixed alg1-/alg2-)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and a /metrics endpoint on this address for the run")
	)
	flag.Parse()

	if *scale <= 0 {
		usage(fmt.Errorf("-scale wants a positive fraction, got %g", *scale))
	}
	if *workers < 0 {
		usage(fmt.Errorf("-workers wants a non-negative count, got %d", *workers))
	}

	var reg *metrics.Registry
	if *pprofAddr != "" {
		reg = metrics.NewRegistry()
		ds, err := metrics.StartDebugServer(*pprofAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		fmt.Fprintf(os.Stderr, "dimabench: pprof and /metrics at http://%s\n", ds.Addr())
	}

	selected := map[string]bool{}
	for _, f := range strings.Split(*exp, ",") {
		selected[strings.TrimSpace(f)] = true
	}
	runAll := selected["all"]

	anyRan := false
	for _, fig := range figures() {
		if !runAll && !selected[fig.name] {
			continue
		}
		anyRan = true
		start := time.Now()
		runs, err := experiment.RunGrid(fig.specs(*scale), experiment.Config{
			Seed: *seed, Workers: *workers,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== %s — %s\n", fig.name, fig.notes)
		fmt.Printf("   %d runs in %v\n\n", len(runs), time.Since(start).Round(time.Millisecond))
		fmt.Println(experiment.RoundsTable(runs).String())
		fmt.Println(experiment.ColorsTable(runs).String())
		if *plot {
			fmt.Println(plotRuns(fig.name, runs))
		}
		if fit, err := experiment.FitRoundsVsDelta(runs); err == nil {
			fmt.Printf("rounds ~ Δ fit: rounds = %.2f + %.2f·Δ (R²=%.3f, %d points)\n",
				fit.Intercept, fit.Slope, fit.R2, fit.N)
		}
		problems := fig.shape.Check(runs)
		problems = append(problems, experiment.NIndependence(runs, 1.5)...)
		if len(problems) == 0 {
			fmt.Println("shape: OK (quality bounds, linearity, n-independence)")
		} else {
			for _, p := range problems {
				fmt.Printf("shape PROBLEM: %s\n", p)
			}
		}
		fmt.Println()
		if *csvPath != "" {
			name := *csvPath
			if runAll || len(selected) > 1 {
				name = fig.name + "-" + name
			}
			f, err := os.Create(name)
			if err != nil {
				fatal(err)
			}
			if err := writeCSV(f, runs); err != nil {
				fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s\n\n", name)
		}
		if *savePth != "" {
			name := fig.name + "-" + *savePth
			f, err := os.Create(name)
			if err != nil {
				fatal(err)
			}
			if err := experiment.SaveRuns(f, fig.name, *seed, runs); err != nil {
				fatal(err)
			}
			f.Close()
			fmt.Printf("saved %s\n\n", name)
		}
	}
	if runAll || selected["fits"] {
		anyRan = true
		fmt.Println("== fits — the conclusion's headline constants: rounds ≈ 2Δ (Algorithm 1) and ≈ 4Δ (Algorithm 2)")
		for _, arm := range []struct {
			name  string
			specs []experiment.Spec
			paper float64
		}{
			{"algorithm 1 (fig3 grid)", experiment.Fig3Specs(*scale), 2},
			{"algorithm 2 (fig6 grid)", experiment.Fig6Specs(*scale), 4},
		} {
			runs, err := experiment.RunGrid(arm.specs, experiment.Config{Seed: *seed, Workers: *workers})
			if err != nil {
				fatal(err)
			}
			fit, err := experiment.FitRoundsVsDelta(runs)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s: rounds = %.2f + %.2f·Δ (R²=%.3f, %d runs); paper reports ≈ %.0fΔ — slope ratio %.2f\n",
				arm.name, fit.Intercept, fit.Slope, fit.R2, fit.N, arm.paper, fit.Slope/arm.paper)
		}
		fmt.Println()
	}
	if runAll || selected["converge"] {
		anyRan = true
		reps := int(10**scale + 0.5)
		if reps < 2 {
			reps = 2
		}
		fmt.Println("== converge — cumulative fraction of edges/arcs colored per computation round")
		series := map[string][]experiment.ConvergencePoint{}
		order := []string{"alg1 er n=200 deg=8", "alg2 dir-er n=200 deg=8"}
		var err error
		if series[order[0]], err = experiment.Convergence(*seed, 200, 8, reps, false); err != nil {
			fatal(err)
		}
		if series[order[1]], err = experiment.Convergence(*seed, 200, 8, reps, true); err != nil {
			fatal(err)
		}
		if *plot {
			fmt.Println(experiment.ConvergencePlot(series, order))
		}
		for _, label := range order {
			pts := series[label]
			half, ninety := -1, -1
			for _, p := range pts {
				if half < 0 && p.Fraction >= 0.5 {
					half = p.Round
				}
				if ninety < 0 && p.Fraction >= 0.9 {
					ninety = p.Round
				}
			}
			fmt.Printf("%s: 50%% colored by round %d, 90%% by round %d, done by round %d\n",
				label, half, ninety, len(pts)-1)
		}
		fmt.Println()
	}
	if runAll || selected["pairprob"] {
		anyRan = true
		reps := int(20**scale + 0.5)
		if reps < 2 {
			reps = 2
		}
		fmt.Println("== pairprob — empirical Equation (1): per-round pairing probability of an active node")
		for _, arm := range []struct {
			name   string
			strong bool
		}{{"algorithm 1 (er n=200 deg=8)", false}, {"algorithm 2 (dir-er n=200 deg=8)", true}} {
			points, err := experiment.PairingProbability(*seed, 200, 8, reps, arm.strong)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("\n%s, %d runs:\n", arm.name, reps)
			fmt.Println(experiment.PairingTable(points, 10).String())
		}
		fmt.Println("Proposition 1 bounds the Algorithm 1 rate below by 1/4 (invitee side alone);")
		fmt.Println("Algorithm 2 pairs per *arc*, needing a directed invitation, so its per-round")
		fmt.Println("rate is lower while the O(Δ) round shape is unchanged.")
		fmt.Println()
	}
	if runAll || selected["compare"] {
		anyRan = true
		start := time.Now()
		reps := int(10**scale + 0.5)
		if reps < 2 {
			reps = 2
		}
		runs, err := experiment.RunComparison(*seed, 200, []float64{4, 8, 16}, reps, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== compare — Algorithm 1 vs the cited prior-work baseline (ref [10]) and centralized references")
		fmt.Printf("   %d runs in %v\n\n", len(runs), time.Since(start).Round(time.Millisecond))
		fmt.Println(experiment.ComparisonTable(runs).String())
		fmt.Println("dima trades rounds (≈2Δ) for a Δ/Δ+1 palette; the simple algorithm")
		fmt.Println("finishes in O(log m) rounds but spreads colors over the 2Δ-1 palette.")
		fmt.Println()

		start = time.Now()
		strongRuns, err := experiment.RunStrongComparison(*seed, 100, []float64{4, 8}, reps, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== compare-strong — Algorithm 2 (DiMa2Ed) vs the simple-strong baseline and centralized greedy")
		fmt.Printf("   %d runs in %v\n\n", len(strongRuns), time.Since(start).Round(time.Millisecond))
		fmt.Println(experiment.StrongComparisonTable(strongRuns).String())
		fmt.Println("same trade at distance 2: dima2ed spends Θ(Δ) rounds for a near-greedy channel")
		fmt.Println("count; the simple-strong baseline finishes in O(log) rounds but needs a palette")
		fmt.Println("sized to the worst-case conflict degree (global knowledge).")
		fmt.Println()
	}
	if runAll || selected["telemetry"] {
		anyRan = true
		runTelemetry(*seed, reg, *metricsOut, *traceOut)
	}
	// The scale sweep is explicit-only: at scale 1 it colors a million-
	// vertex graph per engine, far too heavy to ride along with "all".
	if selected["scale"] {
		anyRan = true
		runScale(*seed, *scale, *workers, *engSel, *benchOut)
	}
	// The parallel sweep is explicit-only for the same reason: at scale 1
	// it colors a 10⁷-edge graph once per worker count.
	if selected["parallel"] {
		anyRan = true
		runParallel(*seed, *scale, *wkrsSet, *benchOut)
	}
	// The cluster sweep is explicit-only: every rung spawns real node
	// processes per cell and pushes the whole message volume through
	// loopback sockets.
	if selected["cluster"] {
		anyRan = true
		runCluster(*seed, *scale, *nodesSet, *benchOut)
	}
	// The dynamic sweep is explicit-only for the same reason: each batch
	// costs a full recolor of the 10⁵-vertex instance for comparison.
	if selected["dynamic"] {
		anyRan = true
		runDynamic(*seed, *scale, *workers, *benchOut)
	}
	// The soak sweep is explicit-only too: at scale 1 it streams a
	// million-plus mutations (and replays them all for determinism).
	if selected["soak"] {
		anyRan = true
		runSoak(*seed, *scale, *workers, *benchOut)
	}
	if runAll || selected["faults"] {
		anyRan = true
		start := time.Now()
		cfg := experiment.DefaultFaultConfig(*seed, *scale)
		cfg.Workers = *workers
		runs, err := experiment.FaultSweep(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== faults — message loss sweep: completeness and round overhead vs drop rate, recovery off/on")
		fmt.Printf("   er n=%d deg=%g, %d runs in %v\n\n", cfg.N, cfg.Deg, len(runs), time.Since(start).Round(time.Millisecond))
		fmt.Println(experiment.FaultTable(experiment.FaultCells(runs)).String())
		fmt.Println("Without recovery any lost negotiation strands the run (half-colored items,")
		fmt.Println("truncation at the round cap); with recovery both algorithms converge to")
		fmt.Println("complete valid colorings, paying rounds and retransmissions that grow with P.")
		fmt.Println()
	}
	if !anyRan {
		fatal(fmt.Errorf("unknown experiment %q (want fig3, fig4, fig5, fig6, compare, converge, pairprob, fits, telemetry, faults, scale, parallel, cluster, dynamic, soak, or all)", *exp))
	}
}

// runScale executes the engine scale sweep (docs/PERFORMANCE.md): the
// same Algorithm 1 run per engine over a graph-size ladder, recording
// wall-clock, allocations, rounds, and traffic, cross-checking that the
// engines agree on the coloring, and optionally persisting the report
// (-bench-out BENCH_PR3.json is the committed baseline).
func runScale(seed uint64, scale float64, workers int, engineList, benchOut string) {
	cfg := experiment.DefaultScaleConfig(seed, scale)
	cfg.Workers = workers
	if engineList != "" {
		cfg.Engines = nil
		for _, e := range strings.Split(engineList, ",") {
			cfg.Engines = append(cfg.Engines, strings.TrimSpace(e))
		}
	}
	fmt.Println("== scale — engine benchmark: wall-clock, allocations, rounds, and traffic per (engine, n)")
	fmt.Printf("   er avg-deg=%g, sizes %v, engines %v\n\n", cfg.AvgDeg, cfg.Sizes, cfg.Engines)
	t := stats.NewTable("engine", "n", "m", "delta", "rounds", "commRounds", "colors", "messages", "wallMS", "allocs", "allocMB")
	start := time.Now()
	rep, err := experiment.ScaleSweep(cfg, func(row experiment.ScaleRow) {
		name := row.Engine
		if row.Workers > 0 {
			name = fmt.Sprintf("%s-%d", row.Engine, row.Workers)
		}
		fmt.Fprintf(os.Stderr, "dimabench: scale %s n=%d done in %.0fms\n", name, row.N, row.WallMS)
	})
	if err != nil {
		fatal(err)
	}
	for _, row := range rep.Rows {
		t.AddRow(row.Engine, row.N, row.M, row.Delta, row.CompRounds, row.CommRounds,
			row.Colors, row.Messages, fmt.Sprintf("%.1f", row.WallMS),
			row.Allocs, fmt.Sprintf("%.1f", row.AllocMB))
	}
	fmt.Println(t.String())
	fmt.Printf("%d rows in %v; colorings identical across engines per size\n",
		len(rep.Rows), time.Since(start).Round(time.Millisecond))
	if benchOut != "" {
		f, err := os.Create(benchOut)
		if err != nil {
			fatal(err)
		}
		if err := experiment.WriteScaleReport(f, rep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", benchOut)
	}
	fmt.Println()
}

// runParallel executes the shard worker-scaling sweep
// (docs/PERFORMANCE.md): the same Algorithm 1 run once on the sync
// reference engine and once per shard worker count over an edge-count
// ladder, recording wall-clock, allocations, delivery records, and
// merge-bucket skips, and cross-checking every shard coloring against
// the sync reference (-bench-out BENCH_PR8.json is the committed
// baseline).
func runParallel(seed uint64, scale float64, workersSet, benchOut string) {
	cfg := experiment.DefaultParallelConfig(seed, scale)
	if workersSet != "" {
		cfg.WorkersSet = nil
		for _, f := range strings.Split(workersSet, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || w < 0 {
				usage(fmt.Errorf("-workers-set wants non-negative counts, got %q", f))
			}
			cfg.WorkersSet = append(cfg.WorkersSet, w)
		}
	}
	fmt.Println("== parallel — shard worker scaling: wall-clock, allocations, delivery records per (workers, m)")
	fmt.Printf("   er avg-deg=%g, edge ladder %v, workers %v, gomaxprocs=%d numcpu=%d\n\n",
		cfg.AvgDeg, cfg.Edges, cfg.WorkersSet, runtime.GOMAXPROCS(0), runtime.NumCPU())
	t := stats.NewTable("engine", "workers", "n", "m", "rounds", "messages",
		"deliveries", "records", "wallMS", "speedup", "allocs/edge")
	start := time.Now()
	rep, err := experiment.ParallelSweep(cfg, func(row experiment.ParallelRow) {
		fmt.Fprintf(os.Stderr, "dimabench: parallel %s workers=%d m=%d done in %.0fms\n",
			row.Engine, row.Workers, row.M, row.WallMS)
	})
	if err != nil {
		fatal(err)
	}
	for _, row := range rep.Rows {
		speedup := "-"
		if row.Speedup > 0 {
			speedup = fmt.Sprintf("%.2fx", row.Speedup)
		}
		records := "-"
		if row.Records > 0 {
			records = fmt.Sprintf("%d", row.Records)
		}
		t.AddRow(row.Engine, row.Workers, row.N, row.M, row.CompRounds, row.Messages,
			row.Deliveries, records, fmt.Sprintf("%.1f", row.WallMS),
			speedup, fmt.Sprintf("%.2f", row.AllocsPerEdge))
	}
	fmt.Println(t.String())
	fmt.Printf("%d rows in %v; every shard coloring byte-identical to the sync reference\n",
		len(rep.Rows), time.Since(start).Round(time.Millisecond))
	if benchOut != "" {
		f, err := os.Create(benchOut)
		if err != nil {
			fatal(err)
		}
		if err := experiment.WriteParallelReport(f, rep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", benchOut)
	}
	fmt.Println()
}

// runCluster executes the tcp engine's process-scaling sweep
// (docs/CLUSTER.md): the same Algorithm 1 run once on the sync
// reference engine and once per node-process count over an edge-count
// ladder, recording wall-clock and wire volume and cross-checking every
// cluster coloring against the sync reference element-wise.
func runCluster(seed uint64, scale float64, nodesSet, benchOut string) {
	cfg := experiment.DefaultClusterConfig(seed, scale)
	if nodesSet != "" {
		cfg.NodesSet = nil
		for _, f := range strings.Split(nodesSet, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || k < 1 {
				usage(fmt.Errorf("-nodes-set wants positive counts, got %q", f))
			}
			cfg.NodesSet = append(cfg.NodesSet, k)
		}
	}
	fmt.Println("== cluster — tcp process scaling: wall-clock and wire volume per (nodes, m)")
	fmt.Printf("   er avg-deg=%g, edge ladder %v, nodes %v, gomaxprocs=%d numcpu=%d\n\n",
		cfg.AvgDeg, cfg.Edges, cfg.NodesSet, runtime.GOMAXPROCS(0), runtime.NumCPU())
	t := stats.NewTable("engine", "nodes", "n", "m", "rounds", "messages",
		"deliveries", "bytes", "wallMS", "overhead")
	start := time.Now()
	rep, err := experiment.ClusterSweep(cfg, func(row experiment.ClusterRow) {
		fmt.Fprintf(os.Stderr, "dimabench: cluster %s nodes=%d m=%d done in %.0fms\n",
			row.Engine, row.Nodes, row.M, row.WallMS)
	})
	if err != nil {
		fatal(err)
	}
	for _, row := range rep.Rows {
		overhead := "-"
		if row.Overhead > 0 {
			overhead = fmt.Sprintf("%.2fx", row.Overhead)
		}
		t.AddRow(row.Engine, row.Nodes, row.N, row.M, row.CompRounds, row.Messages,
			row.Deliveries, row.Bytes, fmt.Sprintf("%.1f", row.WallMS), overhead)
	}
	fmt.Println(t.String())
	fmt.Printf("%d rows in %v; every cluster coloring byte-identical to the sync reference\n",
		len(rep.Rows), time.Since(start).Round(time.Millisecond))
	if benchOut != "" {
		f, err := os.Create(benchOut)
		if err != nil {
			fatal(err)
		}
		if err := experiment.WriteClusterReport(f, rep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", benchOut)
	}
	fmt.Println()
}

// runDynamic executes the dynamic recoloring benchmark (docs/DYNAMIC.md):
// cold-color one instance, stream mutation batches of each size through
// the incremental recolorer, and race every batch against a full recolor
// of the same mutated graph. Every post-batch coloring is verified and
// the streams are replayed to confirm determinism (-bench-out
// BENCH_PR5.json is the committed baseline).
func runDynamic(seed uint64, scale float64, workers int, benchOut string) {
	cfg := experiment.DefaultDynamicConfig(seed, scale)
	cfg.Workers = workers
	fmt.Println("== dynamic — incremental repair vs full recolor: wall-clock per mutation batch")
	fmt.Printf("   er n=%d avg-deg=%g, batch sizes %v × %d batches, tight palette\n\n",
		cfg.N, cfg.AvgDeg, cfg.BatchSizes, cfg.BatchesPerSize)
	t := stats.NewTable("batch", "ins", "del", "greedy", "repaired", "rounds",
		"maxRegion", "incAvgMS", "fullAvgMS", "speedup", "colors")
	start := time.Now()
	rep, err := experiment.DynamicSweep(cfg, func(row experiment.DynamicRow) {
		fmt.Fprintf(os.Stderr, "dimabench: dynamic batch=%d done (inc %.2fms vs full %.0fms per batch)\n",
			row.BatchSize, row.IncAvgMS, row.FullAvgMS)
	})
	if err != nil {
		fatal(err)
	}
	for _, row := range rep.Rows {
		t.AddRow(row.BatchSize, row.Inserted, row.Deleted, row.Greedy, row.RepairedEdges,
			row.RepairRounds, fmt.Sprintf("%dv/%de", row.MaxRegionSize, row.MaxRegionEdges),
			fmt.Sprintf("%.2f", row.IncAvgMS), fmt.Sprintf("%.1f", row.FullAvgMS),
			fmt.Sprintf("%.0fx", row.Speedup), row.IncColors)
	}
	fmt.Println(t.String())
	fmt.Printf("cold run: %d colors in %.0fms (n=%d m=%d Δ=%d); %d rows in %v; deterministic=%v\n",
		rep.ColdColors, rep.ColdWallMS, rep.N, rep.M, rep.Delta,
		len(rep.Rows), time.Since(start).Round(time.Millisecond), rep.Deterministic)
	if !rep.Deterministic {
		fatal(fmt.Errorf("dynamic sweep: replay diverged from the timed run"))
	}
	if benchOut != "" {
		f, err := os.Create(benchOut)
		if err != nil {
			fatal(err)
		}
		if err := experiment.WriteDynamicReport(f, rep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", benchOut)
	}
	fmt.Println()
}

// runSoak executes the long-run churn soak (docs/PERFORMANCE.md): each
// temporal workload streams its mutation budget through a recolorer
// with auto-maintenance on, sampling palette/id-space/latency/heap per
// epoch and hard-asserting the boundedness invariants, then replays for
// determinism (-bench-out BENCH_PR7.json is the committed baseline).
func runSoak(seed uint64, scale float64, workers int, benchOut string) {
	cfg := experiment.DefaultSoakConfig(seed, scale)
	cfg.Workers = workers
	fmt.Println("== soak — long-run churn: palette, id-space, latency, and heap flatness under maintenance")
	fmt.Printf("   er n=%d avg-deg=%g, %d mutations/arm in batches of %d, arms %v, %d epochs\n\n",
		cfg.N, cfg.AvgDeg, cfg.Mutations, cfg.BatchSize, cfg.Workloads, cfg.Epochs)
	t := stats.NewTable("workload", "epoch", "muts", "m", "idBound", "delta",
		"colors", "maxColor", "p50us", "p99us", "passes", "heapMB")
	start := time.Now()
	rep, err := experiment.SoakSweep(cfg, func(w string, ep experiment.SoakEpoch) {
		t.AddRow(w, ep.Epoch, ep.Mutations, ep.M, ep.EdgeIDBound, ep.Delta,
			ep.Colors, ep.MaxColor, fmt.Sprintf("%.0f", ep.P50US),
			fmt.Sprintf("%.0f", ep.P99US), ep.MaintainPasses,
			fmt.Sprintf("%.1f", float64(ep.HeapBytes)/(1<<20)))
		fmt.Fprintf(os.Stderr, "dimabench: soak %s epoch %d/%d (%d mutations)\n",
			w, ep.Epoch+1, cfg.Epochs, ep.Mutations)
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(t.String())
	for _, arm := range rep.Arms {
		last := arm.Epochs[len(arm.Epochs)-1]
		fmt.Printf("%s: %d mutations in %.0fms, %d maintenance passes (%d compactions, %d rebalances), deterministic=%v\n",
			arm.Workload, arm.Mutations, arm.WallMS,
			last.MaintainPasses, last.Compactions, last.Rebalances, arm.Deterministic)
	}
	fmt.Printf("total %d mutations in %v; deterministic=%v\n",
		rep.TotalMutations, time.Since(start).Round(time.Millisecond), rep.Deterministic)
	if !rep.Deterministic {
		fatal(fmt.Errorf("soak sweep: replay diverged from the sampled run"))
	}
	if benchOut != "" {
		f, err := os.Create(benchOut)
		if err != nil {
			fatal(err)
		}
		if err := experiment.WriteSoakReport(f, rep); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", benchOut)
	}
	fmt.Println()
}

// runTelemetry executes one instrumented run of each algorithm on the
// convergence experiments' reference graph (ER, n=200, avg degree 8)
// and prints the per-round picture the aggregate tables hide: activity
// decay, pairing, palette growth, and traffic. With -metrics-out /
// -trace-out the full streams are persisted (one file per algorithm,
// prefixed alg1-/alg2-, following the -save naming convention).
func runTelemetry(seed uint64, reg *metrics.Registry, metricsOut, traceOut string) {
	fmt.Println("== telemetry — instrumented single runs: per-round convergence, palette growth, and traffic")
	g, err := gen.ErdosRenyiAvgDegree(rng.New(seed), 200, 8)
	if err != nil {
		fatal(err)
	}
	for _, arm := range []struct {
		prefix, label string
		strong        bool
	}{
		{"alg1", "algorithm 1 (er n=200 deg=8)", false},
		{"alg2", "algorithm 2 (dir-er n=200 deg=8)", true},
	} {
		mem := &metrics.Memory{}
		sinks := []metrics.Sink{mem}
		var jsonl *metrics.JSONLWriter
		var jsonlFile *os.File
		var jsonlName string
		if metricsOut != "" {
			jsonlName = prefixed(arm.prefix, metricsOut)
			jsonlFile, err = os.Create(jsonlName)
			if err != nil {
				fatal(err)
			}
			jsonl = metrics.NewJSONLWriter(jsonlFile)
			sinks = append(sinks, jsonl)
		}
		if reg != nil {
			sinks = append(sinks, metrics.NewRoundAggregator(reg))
		}
		opt := core.Options{Seed: seed, Metrics: metrics.Multi(sinks...)}
		var rec *trace.Recorder
		if traceOut != "" {
			rec = trace.NewRecorder(0)
			opt.Hook = rec.Hook()
		}
		var res *core.Result
		if arm.strong {
			res, err = core.ColorStrong(graph.NewSymmetric(g), opt)
		} else {
			res, err = core.ColorEdges(g, opt)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s: rounds=%d colors=%d messages=%d terminated=%v\n",
			arm.label, res.CompRounds, res.NumColors, res.Messages, res.Terminated)
		fmt.Println(telemetryTable(mem.Rounds, len(res.Colors)).String())
		if jsonl != nil {
			if err := jsonl.Flush(); err != nil {
				fatal(err)
			}
			jsonlFile.Close()
			fmt.Printf("wrote %s (%d rounds)\n", jsonlName, jsonl.Rounds())
		}
		if rec != nil {
			name := prefixed(arm.prefix, traceOut)
			f, err := os.Create(name)
			if err != nil {
				fatal(err)
			}
			if err := rec.ChromeTrace(f); err != nil {
				fatal(err)
			}
			f.Close()
			fmt.Printf("wrote %s (%d events, load at ui.perfetto.dev)\n", name, rec.Len())
		}
	}
	fmt.Println()
}

// prefixed inserts an algorithm prefix into a path's file name:
// prefixed("alg1", "out/run.jsonl") -> "out/alg1-run.jsonl".
func prefixed(prefix, path string) string {
	return filepath.Join(filepath.Dir(path), prefix+"-"+filepath.Base(path))
}

// telemetryTable samples the round stream down to ~12 rows (always
// keeping the final round) so the convergence shape is readable.
func telemetryTable(rounds []metrics.RoundStats, items int) *stats.Table {
	t := stats.NewTable("round", "active", "inviters", "paired", "colored", "cum%", "colors", "messages", "bytes")
	step := (len(rounds) + 11) / 12
	if step < 1 {
		step = 1
	}
	for i, rs := range rounds {
		if i%step != 0 && i != len(rounds)-1 {
			continue
		}
		cum := "-"
		if items > 0 {
			cum = fmt.Sprintf("%.0f%%", 100*float64(rs.ColoredTotal)/float64(items))
		}
		t.AddRow(rs.Round, rs.Active, rs.Inviters, rs.Paired, rs.Colored, cum,
			rs.NumColors, rs.Messages, rs.Bytes)
	}
	return t
}

// plotRuns renders the figure's scatter: one point per run, one series
// per n (matching the paper's plotting convention of separating sizes).
func plotRuns(name string, runs []experiment.Run) string {
	bySeries := map[string][]viz.Point{}
	var order []string
	for _, r := range runs {
		key := fmt.Sprintf("n=%d", r.N)
		if _, ok := bySeries[key]; !ok {
			order = append(order, key)
		}
		bySeries[key] = append(bySeries[key], viz.Point{X: float64(r.Delta), Y: float64(r.CompRounds)})
	}
	p := viz.NewPlot(fmt.Sprintf("%s: computation rounds vs Δ", name), "Δ", "rounds", 64, 16)
	for _, key := range order {
		p.Add(viz.Series{Name: key, Points: bySeries[key]})
	}
	return p.Render()
}

func writeCSV(f *os.File, runs []experiment.Run) error {
	t := stats.NewTable("group", "rep", "n", "m", "delta", "rounds", "colors", "maxColor", "messages", "pairRate")
	for _, r := range runs {
		t.AddRow(r.Group, r.Rep, r.N, r.M, r.Delta, r.CompRounds, r.Colors, r.MaxColor, r.Messages, r.PairRate)
	}
	return t.WriteCSV(f)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dimabench: %v\n", err)
	os.Exit(1)
}

// usage reports a bad flag value and exits 2, the conventional status
// for a usage error (runtime failures exit 1).
func usage(err error) {
	fmt.Fprintf(os.Stderr, "dimabench: %v\n", err)
	os.Exit(2)
}
