// Package dima is a Go implementation of the distributed edge coloring
// algorithms of Daigle and Prasad, "Two Edge Coloring Algorithms Using a
// Simple Matching Discovery Automata" (IPDPS Workshops, 2012).
//
// Every vertex of the input graph runs an instance of a simple matching
// discovery automaton: in each computation round a node flips a coin to
// become an inviter or a listener, inviters propose to color one
// incident edge with a specific color, listeners accept at most one
// proposal, and accepted pairs — which form a matching — color their
// edge simultaneously without conflict. The package provides:
//
//   - ColorEdges: Algorithm 1, proper edge coloring of an undirected
//     graph with at most 2Δ-1 colors (typically Δ or Δ+1) in O(Δ)
//     rounds.
//   - ColorStrong: Algorithm 2 (DiMa2Ed), strong distance-2 edge
//     coloring of a symmetric digraph — the channel-assignment model for
//     ad-hoc wireless networks — in O(Δ) rounds.
//   - MaximalMatching: the automaton's original application, plus the
//     induced 2-approximate vertex cover.
//
// Protocols run over either of two interchangeable synchronous runtimes:
// a deterministic sequential scheduler (default) and a goroutine-per-
// vertex runtime with channels as links (Chan option). Runs are exactly
// reproducible from a single seed on both runtimes.
//
// The subpackages under internal/ carry the full machinery (graph
// substrate, generators, message layer, verifiers, baselines, experiment
// harness); this package re-exports the surface a downstream user needs.
package dima

import (
	"context"
	"io"

	"dima/internal/automaton"
	"dima/internal/baseline"
	"dima/internal/core"
	"dima/internal/dynamic"
	"dima/internal/gen"
	"dima/internal/graph"
	"dima/internal/matching"
	"dima/internal/metrics"
	"dima/internal/mpr"
	"dima/internal/msg"
	"dima/internal/net"
	"dima/internal/rng"
	"dima/internal/trace"
	"dima/internal/verify"
)

// Graph is a simple undirected graph (see NewGraph).
type Graph = graph.Graph

// Digraph is a symmetric digraph over an undirected graph.
type Digraph = graph.Digraph

// Edge is an undirected edge with normalized endpoints.
type Edge = graph.Edge

// EdgeID indexes edges of a Graph; ArcID indexes arcs of a Digraph.
type (
	EdgeID = graph.EdgeID
	ArcID  = graph.ArcID
)

// Options configures a coloring run; the zero value uses the paper's
// rules on the deterministic sequential runtime with seed 0.
type Options = core.Options

// Result reports a coloring run: colors, rounds, traffic, and quality
// counters.
type Result = core.Result

// Violation describes a constraint breach found by a verifier.
type Violation = verify.Violation

// Rand is the deterministic random source used throughout.
type Rand = rng.Rand

// NewGraph returns an empty undirected graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewSymmetric wraps an undirected graph as a symmetric digraph for
// ColorStrong; g must not be modified afterwards.
func NewSymmetric(g *Graph) *Digraph { return graph.NewSymmetric(g) }

// NewRand returns a seeded deterministic generator (xoshiro256**).
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Chan is the goroutine-per-vertex runtime: assign it to Options.Engine
// to execute each compute node as a goroutine communicating over
// channels. Results are identical to the default sequential runtime.
var Chan = net.RunChan

// Shard is the sharded runtime for large graphs: Options.Workers
// goroutines (0 = GOMAXPROCS) each own a contiguous vertex shard, with
// a deterministic merge barrier between rounds. Results are identical
// to the default sequential runtime for any worker count.
var Shard = net.RunShard

// TCPCluster configures the multi-process tcp engine: assign
// &TCPCluster{Nodes: k} to Options.Cluster to run k node processes,
// each owning a contiguous vertex shard, speaking the binary codec over
// TCP (docs/CLUSTER.md). Results are byte-identical to the in-process
// engines. Spawn-mode binaries must call MaybeNodeMain first thing in
// main.
type TCPCluster = net.TCPCluster

// NodeError is the typed failure of a cluster run: which node process
// (shard) failed, at which round, and why — a crashed, hung, or
// protocol-violating node is reported this way, never as a silent
// partial coloring.
type NodeError = net.NodeError

// MaybeNodeMain turns the current process into a cluster node when the
// coordinator's spawn environment is present, then exits; otherwise it
// is a no-op. Call it at the top of main in any binary that runs
// cluster colorings with an empty TCPCluster.Command.
func MaybeNodeMain() { net.MaybeNodeMain() }

// ColorEdges runs Algorithm 1 on g: a proper edge coloring using at most
// 2Δ-1 colors in O(Δ) expected computation rounds.
func ColorEdges(g *Graph, opt Options) (*Result, error) {
	return core.ColorEdges(g, opt)
}

// ColorEdgesCtx is ColorEdges bounded by ctx: canceling ctx abandons
// the run at the next communication-round barrier and returns the
// partial Result with Aborted set. Rounds executed before the
// cancellation are byte-identical to an uncanceled run.
func ColorEdgesCtx(ctx context.Context, g *Graph, opt Options) (*Result, error) {
	return core.ColorEdgesCtx(ctx, g, opt)
}

// ColorStrong runs Algorithm 2 (DiMa2Ed) on d: a strong distance-2
// directed edge coloring in O(Δ) expected computation rounds.
func ColorStrong(d *Digraph, opt Options) (*Result, error) {
	return core.ColorStrong(d, opt)
}

// ColorStrongCtx is ColorStrong bounded by ctx, with the same
// cancellation contract as ColorEdgesCtx.
func ColorStrongCtx(ctx context.Context, d *Digraph, opt Options) (*Result, error) {
	return core.ColorStrongCtx(ctx, d, opt)
}

// Recolorer maintains a valid edge coloring of a mutating graph: it
// applies batches of edge insertions and deletions, repairing only the
// affected region with the matching automaton instead of recoloring
// everything (docs/DYNAMIC.md).
type Recolorer = dynamic.Recolorer

// RecolorOptions configures a Recolorer; the zero value uses the
// automatic 2Δ−1 palette cap and the sequential engine for repairs.
type RecolorOptions = dynamic.Options

// RecolorReport describes the repair work one batch needed.
type RecolorReport = dynamic.Report

// Mutation is one edge insertion or deletion; MutationBatch groups
// mutations applied atomically (msg.AppendBatch/DecodeBatch is the wire
// codec, "+ u v"/"- u v" text lists the CLI format).
type (
	Mutation      = msg.Mutation
	MutationBatch = msg.MutationBatch
)

// Mutation operations.
const (
	OpInsert = msg.OpInsert
	OpDelete = msg.OpDelete
)

// NewRecolorer wraps a graph and its valid complete coloring (as
// produced by ColorEdges) for incremental maintenance. Both are owned
// by the Recolorer afterwards; pass copies to keep the originals.
func NewRecolorer(g *Graph, colors []int, opt RecolorOptions) (*Recolorer, error) {
	return dynamic.New(g, colors, opt)
}

// Recolor is the one-shot form: it wraps g and colors, applies the
// batch, and returns the Recolorer (holding the mutated graph and
// repaired coloring) with the batch's report. Keep applying batches to
// the returned Recolorer for a mutation stream.
func Recolor(g *Graph, colors []int, b *MutationBatch, opt RecolorOptions) (*Recolorer, *RecolorReport, error) {
	return RecolorCtx(context.Background(), g, colors, b, opt)
}

// RecolorCtx is Recolor bounded by ctx. Cancellation interrupts only
// the automaton repair: the batch still completes through the greedy
// fallback, with RecolorReport.Aborted set.
func RecolorCtx(ctx context.Context, g *Graph, colors []int, b *MutationBatch, opt RecolorOptions) (*Recolorer, *RecolorReport, error) {
	rc, err := dynamic.New(g, colors, opt)
	if err != nil {
		return nil, nil, err
	}
	rep, err := rc.ApplyCtx(ctx, b)
	if err != nil {
		return nil, nil, err
	}
	return rc, rep, nil
}

// RoundStats is one computation round of a run's telemetry stream (see
// Options.Metrics and docs/OBSERVABILITY.md).
type RoundStats = metrics.RoundStats

// MetricsSink receives the per-round telemetry stream; assign one to
// Options.Metrics. MemorySink retains the stream in order; NewJSONLSink
// streams it as JSON Lines.
type (
	MetricsSink = metrics.Sink
	MemorySink  = metrics.Memory
)

// NewJSONLSink returns a sink writing one JSON object per computation
// round to w; call Flush when the run completes.
func NewJSONLSink(w io.Writer) *metrics.JSONLWriter { return metrics.NewJSONLWriter(w) }

// MultiSink fans the telemetry stream out to several sinks (nil entries
// are skipped).
func MultiSink(sinks ...MetricsSink) MetricsSink { return metrics.Multi(sinks...) }

// TraceRecorder captures automaton state transitions; wire its Hook
// into Options.Hook and render with Timeline or ChromeTrace (a
// Perfetto-compatible trace of per-node state timelines).
type TraceRecorder = trace.Recorder

// NewTraceRecorder returns a recorder keeping at most limit events
// (0 = unlimited).
func NewTraceRecorder(limit int) *TraceRecorder { return trace.NewRecorder(limit) }

// Pairing is the extension point of the matching-discovery framework:
// implement it to run a new problem on the paper's automaton. The
// Driver supplies the coin toss, the state machine, and the
// invitation/response/exchange message pattern; the Pairing supplies
// what to propose, what to accept, and what to announce. See
// internal/matching for the reference implementation and
// internal/automaton's driver tests for a minimal custom protocol.
type Pairing = automaton.Pairing

// Driver hosts a Pairing as a protocol node (three communication rounds
// per computation round).
type Driver = automaton.Driver

// Message is the wire message type exchanged by protocol nodes.
type Message = msg.Message

// NewDriver wraps a custom Pairing for execution with RunProtocol.
func NewDriver(id int, r *Rand, p Pairing) *Driver {
	return automaton.NewDriver(id, r, p, nil)
}

// ProtocolNode is a synchronous protocol participant (see internal/net).
type ProtocolNode = net.Node

// RunProtocol executes custom protocol nodes (e.g. Drivers) over g on
// the deterministic sequential runtime, bounded by maxCommRounds
// communication rounds (0 = default).
func RunProtocol(g *Graph, nodes []ProtocolNode, maxCommRounds int) (net.Result, error) {
	return net.RunSync(g, nodes, net.Config{MaxRounds: maxCommRounds})
}

// MatchOptions configures MaximalMatching; the zero value is usable.
type MatchOptions = matching.Options

// MatchResult reports a maximal-matching run.
type MatchResult = matching.Result

// MaximalMatching runs the matching-discovery automaton until the
// matched edges form a maximal matching of g. MatchResult.VertexCover
// derives the classic 2-approximate vertex cover.
func MaximalMatching(g *Graph, opt MatchOptions) (*MatchResult, error) {
	return matching.MaximalMatching(g, opt)
}

// VerifyEdgeColoring checks a proper edge coloring (empty = valid).
func VerifyEdgeColoring(g *Graph, colors []int) []Violation {
	return verify.EdgeColoring(g, colors)
}

// VerifyStrongColoring checks a strong directed distance-2 coloring.
func VerifyStrongColoring(d *Digraph, colors []int) []Violation {
	return verify.StrongColoring(d, colors)
}

// VerifyStrongEdgeColoring checks the undirected distance-2 predicate:
// edges sharing an endpoint or joined by an edge must differ in color.
func VerifyStrongEdgeColoring(g *Graph, colors []int) []Violation {
	return verify.StrongEdgeColoring(g, colors)
}

// ErdosRenyi generates a G(n, p) graph with p set for the given expected
// average degree — the workload of the paper's Figures 3 and 6.
func ErdosRenyi(r *Rand, n int, avgDegree float64) (*Graph, error) {
	return gen.ErdosRenyiAvgDegree(r, n, avgDegree)
}

// ScaleFree generates a preferential-attachment graph (k edges per new
// vertex, attachment probability ∝ degree^power) — Figure 4's workload.
func ScaleFree(r *Rand, n, k int, power float64) (*Graph, error) {
	return gen.BarabasiAlbert(r, n, k, power)
}

// SmallWorld generates a Watts–Strogatz graph (ring lattice degree 2k,
// rewire probability beta) — Figure 5's workload.
func SmallWorld(r *Rand, n, k int, beta float64) (*Graph, error) {
	return gen.WattsStrogatz(r, n, k, beta)
}

// Geometric generates a random geometric (unit-disk) graph, the standard
// wireless interference topology.
func Geometric(r *Rand, n int, radius float64) (*Graph, error) {
	return gen.RandomGeometric(r, n, radius)
}

// PowerLaw generates a random graph with an exact power-law degree
// sequence (exponent gamma over [minDeg, maxDeg]) via the configuration
// model.
func PowerLaw(r *Rand, n, minDeg, maxDeg int, gamma float64) (*Graph, error) {
	degrees, err := gen.PowerLawDegrees(r, n, minDeg, maxDeg, gamma)
	if err != nil {
		return nil, err
	}
	return gen.ConfigurationModel(r, degrees)
}

// FromDegreeSequence generates a uniform random simple graph realizing
// the given degree sequence (configuration model with restarts).
func FromDegreeSequence(r *Rand, degrees []int) (*Graph, error) {
	return gen.ConfigurationModel(r, degrees)
}

// GreedySequential is the centralized first-fit baseline: it colors
// edges in id order with the lowest color free at both endpoints.
func GreedySequential(g *Graph) []int {
	colors, err := baseline.GreedyEdgeColoring(g, nil)
	if err != nil {
		panic(err) // nil order cannot fail
	}
	return colors
}

// VizingSequential is the Misra–Gries centralized baseline: a proper
// edge coloring with at most Δ+1 colors.
func VizingSequential(g *Graph) ([]int, error) {
	return baseline.MisraGries(g)
}

// GreedyStrongSequential is the centralized baseline for ColorStrong.
func GreedyStrongSequential(d *Digraph) []int {
	return baseline.GreedyStrongColoring(d)
}

// SimpleOptions configures SimpleColor; the zero value uses the 2Δ-1
// palette on the sequential runtime.
type SimpleOptions = mpr.Options

// SimpleResult reports a SimpleColor run.
type SimpleResult = mpr.Result

// SimpleColor runs the distributed prior-work baseline the paper cites
// (Marathe–Panconesi–Risinger's simple randomized edge coloring, their
// ref [10]): O(log m) rounds with high probability, colors drawn from a
// fixed 2Δ-1 palette. The head-to-head contrast with ColorEdges is the
// paper's positioning: DiMa spends Θ(Δ) rounds to get a Δ/Δ+1 palette.
func SimpleColor(g *Graph, opt SimpleOptions) (*SimpleResult, error) {
	return mpr.Color(g, opt)
}

// SimpleStrongResult reports a SimpleStrongColor run.
type SimpleStrongResult = mpr.StrongResult

// SimpleStrongColor runs the distance-2 analogue of SimpleColor: the
// distributed comparator for ColorStrong (in the spirit of the
// n-dependent strong-coloring algorithms the paper cites). O(log)
// rounds, but the palette is sized centrally to the worst-case conflict
// degree and the channel count lands far above ColorStrong's.
func SimpleStrongColor(d *Digraph, opt SimpleOptions) (*SimpleStrongResult, error) {
	return mpr.StrongColor(d, opt)
}

// StrongLowerBound returns a structural lower bound on the channels any
// strong directed edge coloring of d must use.
func StrongLowerBound(d *Digraph) int { return verify.StrongLowerBound(d) }

// LatencyModel assigns per-link delays for Makespan analysis.
type LatencyModel = net.LatencyModel

// UniformLatency and RandomLatency are ready-made latency models.
type (
	UniformLatency = net.UniformLatency
	RandomLatency  = net.RandomLatency
)

// Makespan computes the wall-clock completion time of a rounds-round
// synchronous execution over g when each node advances as soon as its
// neighbors' messages arrive (the α-synchronizer realized by the Chan
// runtime) under the given link-delay model.
func Makespan(g *Graph, rounds int, lat LatencyModel) (float64, error) {
	return net.Makespan(g, rounds, lat)
}
