package dima

import "testing"

func TestFacadeEdgeColoring(t *testing.T) {
	g, err := ErdosRenyi(NewRand(1), 80, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ColorEdges(g, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("did not terminate")
	}
	if v := VerifyEdgeColoring(g, res.Colors); len(v) != 0 {
		t.Fatalf("invalid: %v", v[0])
	}
	if d := g.MaxDegree(); res.NumColors > 2*d-1 {
		t.Fatalf("%d colors > 2Δ-1", res.NumColors)
	}
}

func TestFacadeStrongColoring(t *testing.T) {
	g, err := Geometric(NewRand(3), 40, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	d := NewSymmetric(g)
	res, err := ColorStrong(d, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v := VerifyStrongColoring(d, res.Colors); len(v) != 0 {
		t.Fatalf("invalid: %v", v[0])
	}
}

func TestFacadeChanEngine(t *testing.T) {
	g, err := SmallWorld(NewRand(5), 40, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ColorEdges(g, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ColorEdges(g, Options{Seed: 6, Engine: Chan})
	if err != nil {
		t.Fatal(err)
	}
	for e := range a.Colors {
		if a.Colors[e] != b.Colors[e] {
			t.Fatal("engines diverged through the facade")
		}
	}
}

func TestFacadeMatching(t *testing.T) {
	g, err := ScaleFree(NewRand(7), 60, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaximalMatching(g, MatchOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) == 0 {
		t.Fatal("empty matching")
	}
	cover := res.VertexCover(g)
	if len(cover) != 2*len(res.Edges) {
		t.Fatal("cover size mismatch")
	}
}

func TestFacadeBaselines(t *testing.T) {
	g, err := ErdosRenyi(NewRand(9), 60, 6)
	if err != nil {
		t.Fatal(err)
	}
	if v := VerifyEdgeColoring(g, GreedySequential(g)); len(v) != 0 {
		t.Fatalf("greedy baseline invalid: %v", v[0])
	}
	vz, err := VizingSequential(g)
	if err != nil {
		t.Fatal(err)
	}
	if v := VerifyEdgeColoring(g, vz); len(v) != 0 {
		t.Fatalf("vizing baseline invalid: %v", v[0])
	}
	d := NewSymmetric(g)
	if v := VerifyStrongColoring(d, GreedyStrongSequential(d)); len(v) != 0 {
		t.Fatalf("strong baseline invalid: %v", v[0])
	}
}

func TestFacadeGraphConstruction(t *testing.T) {
	g := NewGraph(3)
	if _, err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddEdge(0, 1); err == nil {
		t.Fatal("duplicate accepted")
	}
	res, err := ColorEdges(g, Options{})
	if err != nil || res.NumColors != 1 {
		t.Fatalf("tiny run: %v %+v", err, res)
	}
}

func TestFacadeSimpleColor(t *testing.T) {
	g, err := ErdosRenyi(NewRand(11), 80, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimpleColor(g, SimpleOptions{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("did not terminate")
	}
	if v := VerifyEdgeColoring(g, res.Colors); len(v) != 0 {
		t.Fatalf("invalid: %v", v[0])
	}
	if res.Rounds >= g.MaxDegree()*2 {
		t.Fatalf("simple baseline took %d rounds at Δ=%d", res.Rounds, g.MaxDegree())
	}
}

func TestFacadeMakespan(t *testing.T) {
	g, err := ErdosRenyi(NewRand(13), 40, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ColorEdges(g, Options{Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Makespan(g, res.CommRounds, UniformLatency(2))
	if err != nil {
		t.Fatal(err)
	}
	if uniform != float64(2*res.CommRounds) {
		t.Fatalf("uniform makespan %v, want %d", uniform, 2*res.CommRounds)
	}
	random, err := Makespan(g, res.CommRounds, RandomLatency{Seed: 1, Min: 1, Max: 3})
	if err != nil {
		t.Fatal(err)
	}
	if random < float64(res.CommRounds) || random > float64(3*res.CommRounds) {
		t.Fatalf("random makespan %v outside bounds", random)
	}
}

func TestFacadeSimpleStrongColor(t *testing.T) {
	g, err := ErdosRenyi(NewRand(15), 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := NewSymmetric(g)
	res, err := SimpleStrongColor(d, SimpleOptions{Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("did not terminate")
	}
	if v := VerifyStrongColoring(d, res.Colors); len(v) != 0 {
		t.Fatalf("invalid: %v", v[0])
	}
	if lb := StrongLowerBound(d); res.NumColors < lb {
		t.Fatalf("%d channels below bound %d", res.NumColors, lb)
	}
}

// counterPairing is a minimal custom protocol through the public
// framework surface: each node counts the pairings it joins.
type counterPairing struct {
	id    int
	g     *Graph
	count int
	quota int
}

func (p *counterPairing) Live() bool             { return p.quota > 0 && p.g.Degree(p.id) > 0 }
func (p *counterPairing) Absorb(inbox []Message) { p.quota-- }
func (p *counterPairing) Exchange() []Message    { return nil }
func (p *counterPairing) Complete(resp Message)  { p.count++ }
func (p *counterPairing) Invite(r *Rand) (Message, bool) {
	nbrs := p.g.Neighbors(p.id)
	return Message{From: p.id, To: nbrs[r.Intn(len(nbrs))], Edge: -1, Color: -1}, true
}
func (p *counterPairing) Respond(mine, _ []Message, r *Rand) (Message, bool) {
	m := mine[r.Intn(len(mine))]
	p.count++
	return Message{To: m.From, Edge: -1, Color: -1}, true
}

func TestFacadeCustomProtocol(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 0)
	base := NewRand(5)
	pairings := make([]*counterPairing, g.N())
	nodes := make([]ProtocolNode, g.N())
	for u := 0; u < g.N(); u++ {
		pairings[u] = &counterPairing{id: u, g: g, quota: 20}
		nodes[u] = NewDriver(u, base.Derive(uint64(u)), pairings[u])
	}
	res, err := RunProtocol(g, nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatal("custom protocol did not terminate")
	}
	total := 0
	for _, p := range pairings {
		total += p.count
	}
	if total == 0 || total%2 != 0 {
		t.Fatalf("pairing count %d (want positive and even)", total)
	}
}

func TestFacadeRecolor(t *testing.T) {
	r := NewRand(9)
	g, err := ErdosRenyi(r, 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ColorEdges(g, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Find a fresh pair and a live edge to mutate.
	var iu, iv int
	for iu, iv = 0, 1; g.HasEdge(iu, iv); iv++ {
	}
	e := g.EdgeAt(0)
	b := &MutationBatch{Seq: 1, Muts: []Mutation{
		{Op: OpInsert, U: iu, V: iv},
		{Op: OpDelete, U: e.U, V: e.V},
	}}
	rc, rep, err := Recolor(g.Clone(), append([]int(nil), res.Colors...), b, RecolorOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inserted != 1 || rep.Deleted != 1 {
		t.Fatalf("report %+v", rep)
	}
	if v := VerifyEdgeColoring(rc.Graph(), rc.Colors()); len(v) != 0 {
		t.Fatalf("mutated coloring invalid: %v", v[0])
	}
	// The recolorer stays usable for further batches.
	if _, err := rc.Apply(&MutationBatch{Seq: 2, Muts: []Mutation{
		{Op: OpInsert, U: e.U, V: e.V},
	}}); err != nil {
		t.Fatal(err)
	}
	if v := VerifyEdgeColoring(rc.Graph(), rc.Colors()); len(v) != 0 {
		t.Fatalf("second batch invalid: %v", v[0])
	}
}

func TestFacadeVerifyStrongEdgeColoring(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if v := VerifyStrongEdgeColoring(g, []int{0, 0}); len(v) == 0 {
		t.Fatal("adjacent reuse accepted as strong")
	}
	if v := VerifyStrongEdgeColoring(g, []int{0, 1}); len(v) != 0 {
		t.Fatalf("strong coloring rejected: %v", v)
	}
}
