package dima_test

import (
	"fmt"
	"log"

	"dima"
)

// A complete run of Algorithm 1: build a graph, color it, verify.
func ExampleColorEdges() {
	g := dima.NewGraph(4) // a 4-cycle
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if _, err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	res, err := dima.ColorEdges(g, dima.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("valid:", len(dima.VerifyEdgeColoring(g, res.Colors)) == 0)
	fmt.Println("colors:", res.NumColors)
	// Output:
	// valid: true
	// colors: 2
}

// Strong distance-2 coloring of a path's symmetric digraph: all four
// arcs of P3 are mutually conflicting, so four channels are needed.
func ExampleColorStrong() {
	g := dima.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	d := dima.NewSymmetric(g)
	res, err := dima.ColorStrong(d, dima.Options{Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("valid:", len(dima.VerifyStrongColoring(d, res.Colors)) == 0)
	fmt.Println("channels:", res.NumColors)
	// Output:
	// valid: true
	// channels: 4
}

// The automaton's original application: a maximal matching and the
// induced 2-approximate vertex cover.
func ExampleMaximalMatching() {
	g := dima.NewGraph(4) // path 0-1-2-3
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	res, err := dima.MaximalMatching(g, dima.MatchOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matched edges:", len(res.Edges))
	fmt.Println("cover size:", len(res.VertexCover(g)))
	// Output:
	// matched edges: 1
	// cover size: 2
}

// Wall-clock analysis: uniform link delays make every round cost the
// same, so the makespan is rounds × delay.
func ExampleMakespan() {
	g := dima.NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	t, err := dima.Makespan(g, 5, dima.UniformLatency(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("time:", t)
	// Output:
	// time: 10
}
